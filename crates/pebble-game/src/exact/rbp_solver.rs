//! Exact optimal-cost search for the (one-shot) red-blue pebble game.

use super::{ExactError, SearchConfig};
use crate::moves::RbpMove;
use crate::rbp::RbpConfig;
use crate::trace::RbpTrace;
use pebble_dag::{BitSet, Dag, NodeId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A pebbling configuration of the RBP game.
#[derive(Clone, PartialEq, Eq, Hash)]
struct RbpState {
    red: BitSet,
    blue: BitSet,
    computed: BitSet,
}

/// Optimal I/O cost of pebbling `dag` under `config`.
pub fn optimal_rbp_cost(
    dag: &Dag,
    config: RbpConfig,
    search: SearchConfig,
) -> Result<usize, ExactError> {
    solve(dag, config, search, false).map(|(cost, _)| cost)
}

/// Optimal I/O cost together with one optimal pebbling trace.
pub fn optimal_rbp_trace(
    dag: &Dag,
    config: RbpConfig,
    search: SearchConfig,
) -> Result<(usize, RbpTrace), ExactError> {
    let (cost, trace) = solve(dag, config, search, true)?;
    Ok((cost, trace.expect("trace requested")))
}

fn solve(
    dag: &Dag,
    config: RbpConfig,
    search: SearchConfig,
    want_trace: bool,
) -> Result<(usize, Option<RbpTrace>), ExactError> {
    // Feasibility: computing a node of in-degree d needs d+1 simultaneous red
    // pebbles (d with sliding, which reuses one of the input slots).
    let needed = dag.max_in_degree() + usize::from(!config.allow_sliding);
    if config.r < needed {
        return Err(ExactError::Unsolvable);
    }

    let n = dag.node_count();
    let sources: Vec<NodeId> = dag.sources();
    let sinks: Vec<NodeId> = dag.sinks();

    let mut initial_blue = BitSet::new(n);
    for &s in &sources {
        initial_blue.insert(s.index());
    }
    let start = RbpState {
        red: BitSet::new(n),
        blue: initial_blue,
        computed: BitSet::new(n),
    };

    // Admissible heuristic: every source whose red pebble is absent while some
    // successor is still uncomputed needs at least one more load; every sink
    // without a blue pebble needs at least one more save.
    let heuristic = |st: &RbpState| -> usize {
        let mut h = 0;
        for &s in &sources {
            if !st.red.contains(s.index())
                && dag.successors(s).any(|w| !st.computed.contains(w.index()))
            {
                h += 1;
            }
        }
        for &t in &sinks {
            if !st.blue.contains(t.index()) {
                h += 1;
            }
        }
        h
    };

    let is_goal = |st: &RbpState| -> bool { sinks.iter().all(|t| st.blue.contains(t.index())) };

    let mut states: Vec<RbpState> = vec![start.clone()];
    let mut index: HashMap<RbpState, usize> = HashMap::new();
    index.insert(start.clone(), 0);
    let mut dist: Vec<usize> = vec![0];
    let mut parent: Vec<Option<(usize, RbpMove)>> = vec![None];

    let mut heap: BinaryHeap<Reverse<(usize, usize, usize)>> = BinaryHeap::new();
    heap.push(Reverse((heuristic(&start), 0, 0)));

    while let Some(Reverse((_, g, idx))) = heap.pop() {
        if g > dist[idx] {
            continue;
        }
        let state = states[idx].clone();
        if is_goal(&state) {
            let trace = want_trace.then(|| reconstruct(&parent, idx));
            return Ok((g, trace));
        }
        if states.len() > search.max_states {
            return Err(ExactError::StateLimitExceeded {
                explored: states.len(),
            });
        }

        let red_count = state.red.count();
        let push_succ =
            |succ: RbpState,
             mv: RbpMove,
             cost: usize,
             states: &mut Vec<RbpState>,
             index: &mut HashMap<RbpState, usize>,
             dist: &mut Vec<usize>,
             parent: &mut Vec<Option<(usize, RbpMove)>>,
             heap: &mut BinaryHeap<Reverse<(usize, usize, usize)>>| {
                let new_g = g + cost;
                let succ_idx = match index.get(&succ) {
                    Some(&i) => i,
                    None => {
                        let i = states.len();
                        states.push(succ.clone());
                        index.insert(succ, i);
                        dist.push(usize::MAX);
                        parent.push(None);
                        i
                    }
                };
                if new_g < dist[succ_idx] {
                    dist[succ_idx] = new_g;
                    parent[succ_idx] = Some((idx, mv));
                    heap.push(Reverse((
                        new_g + heuristic(&states[succ_idx]),
                        new_g,
                        succ_idx,
                    )));
                }
            };

        for v in dag.nodes() {
            let vi = v.index();
            // Load.
            if state.blue.contains(vi) && !state.red.contains(vi) && red_count < config.r {
                let mut s = state.clone();
                s.red.insert(vi);
                push_succ(
                    s,
                    RbpMove::Load(v),
                    1,
                    &mut states,
                    &mut index,
                    &mut dist,
                    &mut parent,
                    &mut heap,
                );
            }
            // Save.
            if state.red.contains(vi) && !state.blue.contains(vi) {
                let mut s = state.clone();
                s.blue.insert(vi);
                push_succ(
                    s,
                    RbpMove::Save(v),
                    1,
                    &mut states,
                    &mut index,
                    &mut dist,
                    &mut parent,
                    &mut heap,
                );
            }
            // Compute (and slides).
            if !dag.is_source(v)
                && (config.allow_recompute || !state.computed.contains(vi))
                && dag.predecessors(v).all(|u| state.red.contains(u.index()))
            {
                if state.red.contains(vi) || red_count < config.r {
                    let mut s = state.clone();
                    s.red.insert(vi);
                    s.computed.insert(vi);
                    push_succ(
                        s,
                        RbpMove::Compute(v),
                        0,
                        &mut states,
                        &mut index,
                        &mut dist,
                        &mut parent,
                        &mut heap,
                    );
                }
                if config.allow_sliding {
                    for &(u, _) in dag.in_edges(v) {
                        let mut s = state.clone();
                        s.red.remove(u.index());
                        s.red.insert(vi);
                        s.computed.insert(vi);
                        push_succ(
                            s,
                            RbpMove::ComputeSlide { node: v, from: u },
                            0,
                            &mut states,
                            &mut index,
                            &mut dist,
                            &mut parent,
                            &mut heap,
                        );
                    }
                }
            }
            // Delete. Without re-computation, deleting the only copy of a
            // value that is still needed leads to a dead state, so we prune
            // those deletions (this preserves optimality).
            if !config.no_delete && state.red.contains(vi) {
                let safe = config.allow_recompute
                    || state.blue.contains(vi)
                    || dag
                        .successors(v)
                        .all(|w| state.computed.contains(w.index()));
                if safe {
                    let mut s = state.clone();
                    s.red.remove(vi);
                    push_succ(
                        s,
                        RbpMove::Delete(v),
                        0,
                        &mut states,
                        &mut index,
                        &mut dist,
                        &mut parent,
                        &mut heap,
                    );
                }
            }
        }
    }
    Err(ExactError::Unsolvable)
}

fn reconstruct(parent: &[Option<(usize, RbpMove)>], mut idx: usize) -> RbpTrace {
    let mut moves = Vec::new();
    while let Some((prev, mv)) = parent[idx] {
        moves.push(mv);
        idx = prev;
    }
    moves.reverse();
    RbpTrace::from_moves(moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::generators::{binary_tree, fig1_full, pyramid};
    use pebble_dag::DagBuilder;

    #[test]
    fn chain_has_trivial_cost_only() {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(4);
        for w in n.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let g = b.build().unwrap();
        assert_eq!(
            optimal_rbp_cost(&g, RbpConfig::new(2), SearchConfig::default()).unwrap(),
            2
        );
    }

    #[test]
    fn infeasible_when_cache_too_small() {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[2]);
        let g = b.build().unwrap();
        assert_eq!(
            optimal_rbp_cost(&g, RbpConfig::new(2), SearchConfig::default()),
            Err(ExactError::Unsolvable)
        );
        // Sliding reduces the requirement by one pebble.
        assert_eq!(
            optimal_rbp_cost(
                &g,
                RbpConfig::new(2).with_sliding(),
                SearchConfig::default()
            )
            .unwrap(),
            3
        );
    }

    #[test]
    fn fig1_optimum_is_three_with_r4() {
        // Proposition 4.2: OPT_RBP = 3.
        let f = fig1_full();
        assert_eq!(
            optimal_rbp_cost(&f.dag, RbpConfig::new(4), SearchConfig::default()).unwrap(),
            3
        );
    }

    #[test]
    fn fig1_recomputation_reaches_two() {
        // Appendix B.1: with re-computation, OPT_RBP drops to 2 on Figure 1.
        let f = fig1_full();
        assert_eq!(
            optimal_rbp_cost(
                &f.dag,
                RbpConfig::new(4).with_recompute(),
                SearchConfig::default()
            )
            .unwrap(),
            2
        );
    }

    #[test]
    fn fig1_sliding_reaches_two() {
        // Appendix B.2: with sliding pebbles, OPT_RBP also drops to 2 on Figure 1.
        let f = fig1_full();
        assert_eq!(
            optimal_rbp_cost(
                &f.dag,
                RbpConfig::new(4).with_sliding(),
                SearchConfig::default()
            )
            .unwrap(),
            2
        );
    }

    #[test]
    fn binary_tree_depth2_matches_formula() {
        // Appendix A.2 formula: OPT_RBP = 2^d + 2^(d-1)·2 - ... for depth d with r = 3
        // the non-trivial I/O is 2^d - 2 and the trivial cost is 2^d + 1.
        let d = 2;
        let g = binary_tree(d);
        let expected = (1usize << d) + 1 + ((1usize << d) - 2);
        assert_eq!(
            optimal_rbp_cost(&g, RbpConfig::new(3), SearchConfig::default()).unwrap(),
            expected
        );
    }

    #[test]
    fn optimal_trace_replays_to_optimal_cost() {
        let f = fig1_full();
        let (cost, trace) =
            optimal_rbp_trace(&f.dag, RbpConfig::new(4), SearchConfig::default()).unwrap();
        assert_eq!(cost, 3);
        assert_eq!(trace.validate(&f.dag, RbpConfig::new(4)).unwrap(), 3);
    }

    #[test]
    fn pyramid_with_ample_cache_has_trivial_cost() {
        let p = pyramid(4);
        let trivial = p.dag.trivial_cost();
        assert_eq!(
            optimal_rbp_cost(&p.dag, RbpConfig::new(10), SearchConfig::default()).unwrap(),
            trivial
        );
    }

    #[test]
    fn state_limit_is_reported() {
        let f = fig1_full();
        let result = optimal_rbp_cost(&f.dag, RbpConfig::new(4), SearchConfig::with_max_states(3));
        assert!(matches!(result, Err(ExactError::StateLimitExceeded { .. })));
    }
}

//! Exact optimal-cost A* search for the (one-shot) red-blue pebble game.
//!
//! States are packed into three bit planes (red, blue, computed) over the
//! nodes — see [`super::state`] — and deduplicated through a transposition
//! table. The search is A* with a pluggable admissible heuristic
//! ([`LowerBound`]); with [`ZeroHeuristic`](super::ZeroHeuristic) it
//! degenerates to the original uniform-cost search.

use super::heuristic::{LowerBound, RbpStateView};
use super::state::{self, plane_words, Transposition};
use super::{ExactError, SearchConfig, SearchStats};
use crate::moves::RbpMove;
use crate::rbp::RbpConfig;
use crate::trace::RbpTrace;
use pebble_dag::{Dag, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The packed start state: blue pebbles on all sources, nothing else.
pub(super) fn start_words(dag: &Dag) -> Vec<u64> {
    let w = plane_words(dag.node_count());
    let mut words = vec![0u64; 3 * w];
    for v in dag.nodes() {
        if dag.is_source(v) {
            state::set(&mut words[w..2 * w], v.index());
        }
    }
    words
}

pub(super) fn solve_with(
    dag: &Dag,
    config: RbpConfig,
    search: SearchConfig,
    heuristic: &dyn LowerBound,
    want_trace: bool,
) -> Result<(usize, SearchStats, Option<RbpTrace>), ExactError> {
    // Feasibility: computing a node of in-degree d needs d+1 simultaneous red
    // pebbles (d with sliding, which reuses one of the input slots).
    let needed = dag.max_in_degree() + usize::from(!config.allow_sliding);
    if config.r < needed {
        return Err(ExactError::Unsolvable);
    }

    let n = dag.node_count();
    let w = plane_words(n);
    let sinks: Vec<NodeId> = dag.sinks();

    let start = start_words(dag);
    let h = |words: &[u64]| heuristic.rbp_bound(dag, config, &RbpStateView::new(words, n));

    let mut tt: Transposition<RbpMove> = Transposition::new(&start);
    let mut heap: BinaryHeap<Reverse<(usize, usize, u32)>> = BinaryHeap::new();
    heap.push(Reverse((h(&start), 0, 0)));

    let mut stats = SearchStats::default();
    let mut scratch: Vec<u64> = vec![0; 3 * w];

    // Plane accessors over the packed layout [red | blue | computed].
    let red = |words: &[u64], i: usize| state::get(&words[..w], i);
    let blue = |words: &[u64], i: usize| state::get(&words[w..2 * w], i);
    let computed = |words: &[u64], i: usize| state::get(&words[2 * w..], i);

    while let Some(Reverse((_, g, idx))) = heap.pop() {
        if g > tt.slot(idx).g {
            continue;
        }
        let cur = std::rc::Rc::clone(&tt.slot(idx).key);
        if sinks.iter().all(|t| blue(&cur, t.index())) {
            let trace = want_trace.then(|| RbpTrace::from_moves(tt.reconstruct_moves(idx)));
            stats.distinct = tt.len();
            return Ok((g, stats, trace));
        }
        if tt.len() > search.max_states {
            return Err(ExactError::StateLimitExceeded { explored: tt.len() });
        }
        stats.expanded += 1;

        let red_count = state::popcount(&cur[..w]);

        macro_rules! push_succ {
            ($mv:expr, $cost:expr) => {{
                stats.generated += 1;
                let new_g = g + $cost;
                let i = tt.intern(&scratch);
                let slot = tt.slot_mut(i);
                if new_g < slot.g {
                    slot.g = new_g;
                    slot.parent = Some((idx, $mv));
                    heap.push(Reverse((new_g + h(&scratch), new_g, i)));
                }
            }};
        }

        for v in dag.nodes() {
            let vi = v.index();
            let v_red = red(&cur, vi);
            let v_blue = blue(&cur, vi);
            // Load.
            if v_blue && !v_red && red_count < config.r {
                scratch.copy_from_slice(&cur);
                state::set(&mut scratch[..w], vi);
                push_succ!(RbpMove::Load(v), 1);
            }
            // Save.
            if v_red && !v_blue {
                scratch.copy_from_slice(&cur);
                state::set(&mut scratch[w..2 * w], vi);
                push_succ!(RbpMove::Save(v), 1);
            }
            // Compute (and slides).
            if !dag.is_source(v)
                && (config.allow_recompute || !computed(&cur, vi))
                && dag.predecessors(v).all(|u| red(&cur, u.index()))
            {
                if v_red || red_count < config.r {
                    scratch.copy_from_slice(&cur);
                    state::set(&mut scratch[..w], vi);
                    state::set(&mut scratch[2 * w..], vi);
                    push_succ!(RbpMove::Compute(v), 0);
                }
                if config.allow_sliding {
                    for &(u, _) in dag.in_edges(v) {
                        scratch.copy_from_slice(&cur);
                        state::clear(&mut scratch[..w], u.index());
                        state::set(&mut scratch[..w], vi);
                        state::set(&mut scratch[2 * w..], vi);
                        push_succ!(RbpMove::ComputeSlide { node: v, from: u }, 0);
                    }
                }
            }
            // Delete. Without re-computation, deleting the only copy of a
            // value that is still needed leads to a dead state, so we prune
            // those deletions (this preserves optimality).
            if !config.no_delete && v_red {
                let safe = config.allow_recompute
                    || v_blue
                    || dag.successors(v).all(|s| computed(&cur, s.index()));
                if safe {
                    scratch.copy_from_slice(&cur);
                    state::clear(&mut scratch[..w], vi);
                    push_succ!(RbpMove::Delete(v), 0);
                }
            }
        }
    }
    Err(ExactError::Unsolvable)
}

#[cfg(test)]
mod tests {
    use super::super::{optimal_rbp_cost, optimal_rbp_trace};
    use super::*;
    use pebble_dag::generators::{binary_tree, fig1_full, pyramid};
    use pebble_dag::DagBuilder;

    #[test]
    fn chain_has_trivial_cost_only() {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(4);
        for w in n.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let g = b.build().unwrap();
        assert_eq!(
            optimal_rbp_cost(&g, RbpConfig::new(2), SearchConfig::default()).unwrap(),
            2
        );
    }

    #[test]
    fn infeasible_when_cache_too_small() {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[2]);
        let g = b.build().unwrap();
        assert_eq!(
            optimal_rbp_cost(&g, RbpConfig::new(2), SearchConfig::default()),
            Err(ExactError::Unsolvable)
        );
        // Sliding reduces the requirement by one pebble.
        assert_eq!(
            optimal_rbp_cost(
                &g,
                RbpConfig::new(2).with_sliding(),
                SearchConfig::default()
            )
            .unwrap(),
            3
        );
    }

    #[test]
    fn fig1_optimum_is_three_with_r4() {
        // Proposition 4.2: OPT_RBP = 3.
        let f = fig1_full();
        assert_eq!(
            optimal_rbp_cost(&f.dag, RbpConfig::new(4), SearchConfig::default()).unwrap(),
            3
        );
    }

    #[test]
    fn fig1_recomputation_reaches_two() {
        // Appendix B.1: with re-computation, OPT_RBP drops to 2 on Figure 1.
        let f = fig1_full();
        assert_eq!(
            optimal_rbp_cost(
                &f.dag,
                RbpConfig::new(4).with_recompute(),
                SearchConfig::default()
            )
            .unwrap(),
            2
        );
    }

    #[test]
    fn fig1_sliding_reaches_two() {
        // Appendix B.2: with sliding pebbles, OPT_RBP also drops to 2 on Figure 1.
        let f = fig1_full();
        assert_eq!(
            optimal_rbp_cost(
                &f.dag,
                RbpConfig::new(4).with_sliding(),
                SearchConfig::default()
            )
            .unwrap(),
            2
        );
    }

    #[test]
    fn binary_tree_depth2_matches_formula() {
        // Appendix A.2 formula: the non-trivial I/O is 2^d - 2 and the trivial
        // cost is 2^d + 1 for depth d with r = 3.
        let d = 2;
        let g = binary_tree(d);
        let expected = (1usize << d) + 1 + ((1usize << d) - 2);
        assert_eq!(
            optimal_rbp_cost(&g, RbpConfig::new(3), SearchConfig::default()).unwrap(),
            expected
        );
    }

    #[test]
    fn optimal_trace_replays_to_optimal_cost() {
        let f = fig1_full();
        let (cost, trace) =
            optimal_rbp_trace(&f.dag, RbpConfig::new(4), SearchConfig::default()).unwrap();
        assert_eq!(cost, 3);
        assert_eq!(trace.validate(&f.dag, RbpConfig::new(4)).unwrap(), 3);
    }

    #[test]
    fn pyramid_with_ample_cache_has_trivial_cost() {
        let p = pyramid(4);
        let trivial = p.dag.trivial_cost();
        assert_eq!(
            optimal_rbp_cost(&p.dag, RbpConfig::new(10), SearchConfig::default()).unwrap(),
            trivial
        );
    }

    #[test]
    fn state_limit_is_reported() {
        let f = fig1_full();
        let result = optimal_rbp_cost(&f.dag, RbpConfig::new(4), SearchConfig::with_max_states(3));
        assert!(matches!(result, Err(ExactError::StateLimitExceeded { .. })));
    }

    #[test]
    fn stats_are_populated_and_zero_expands_more() {
        use super::super::heuristic::{LoadCountHeuristic, ZeroHeuristic};
        let f = fig1_full();
        let zero = solve_with(
            &f.dag,
            RbpConfig::new(4),
            SearchConfig::default(),
            &ZeroHeuristic,
            false,
        )
        .unwrap();
        let load = solve_with(
            &f.dag,
            RbpConfig::new(4),
            SearchConfig::default(),
            &LoadCountHeuristic,
            false,
        )
        .unwrap();
        assert_eq!(zero.0, load.0);
        assert!(zero.1.expanded > 0 && load.1.expanded > 0);
        assert!(load.1.expanded <= zero.1.expanded);
        assert!(load.1.distinct > 0);
    }
}

//! The transposition table of the exact solvers, keyed by the canonical
//! packed state encoding of [`crate::packed`].
//!
//! A search state is a fixed number of `u64` words: bit planes over the nodes
//! (and, for PRBP, the edges) of the DAG. Equal configurations encode to
//! identical words, so a single hash-map lookup on the word slice detects
//! duplicates in O(words). Keys are interned as `Rc<[u64]>`: one heap
//! allocation per *distinct* state, shared between the table index and the
//! slot storage, instead of the three separately allocated `BitSet`s (plus a
//! cloned key) per state the solvers used before.

use std::collections::HashMap;
use std::rc::Rc;

// The bit-plane primitives moved to the public `crate::packed` module so the
// heuristic schedulers can share the encoding; the solvers keep using them
// through this alias.
pub(crate) use crate::packed::{clear, get, plane_words, popcount, set};

/// One entry of the transposition table: the interned state, its best known
/// distance from the start, and the parent pointer for trace reconstruction.
pub(super) struct Slot<M> {
    pub key: Rc<[u64]>,
    pub g: usize,
    pub parent: Option<(u32, M)>,
}

/// Transposition table: interned packed states with O(1) duplicate detection.
pub(super) struct Transposition<M> {
    index: HashMap<Rc<[u64]>, u32>,
    slots: Vec<Slot<M>>,
}

impl<M> Transposition<M> {
    /// Create a table containing only the start state (distance 0).
    pub fn new(start: &[u64]) -> Self {
        let key: Rc<[u64]> = Rc::from(start);
        let mut index = HashMap::new();
        index.insert(Rc::clone(&key), 0u32);
        Transposition {
            index,
            slots: vec![Slot {
                key,
                g: 0,
                parent: None,
            }],
        }
    }

    /// Number of distinct states interned so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Look up `words`, interning a fresh slot (with `g = usize::MAX`) if the
    /// state has not been seen. Returns the slot id.
    pub fn intern(&mut self, words: &[u64]) -> u32 {
        if let Some(&i) = self.index.get(words) {
            return i;
        }
        let i = self.slots.len() as u32;
        let key: Rc<[u64]> = Rc::from(words);
        self.index.insert(Rc::clone(&key), i);
        self.slots.push(Slot {
            key,
            g: usize::MAX,
            parent: None,
        });
        i
    }

    pub fn slot(&self, i: u32) -> &Slot<M> {
        &self.slots[i as usize]
    }

    pub fn slot_mut(&mut self, i: u32) -> &mut Slot<M> {
        &mut self.slots[i as usize]
    }
}

impl<M: Copy> Transposition<M> {
    /// Walk the parent chain from `idx` back to the start, returning the
    /// moves in forward order.
    pub fn reconstruct_moves(&self, mut idx: u32) -> Vec<M> {
        let mut moves = Vec::new();
        while let Some((prev, mv)) = self.slots[idx as usize].parent {
            moves.push(mv);
            idx = prev;
        }
        moves.reverse();
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_detects_duplicates() {
        let start = [0u64, 0];
        let mut tt: Transposition<u8> = Transposition::new(&start);
        assert_eq!(tt.len(), 1);
        assert_eq!(tt.intern(&[0, 0]), 0);
        let a = tt.intern(&[1, 0]);
        assert_eq!(a, 1);
        assert_eq!(tt.intern(&[1, 0]), 1);
        assert_eq!(tt.len(), 2);
        assert_eq!(tt.slot(a).g, usize::MAX);
    }

    #[test]
    fn reconstruct_walks_parent_chain() {
        let mut tt: Transposition<char> = Transposition::new(&[0]);
        let a = tt.intern(&[1]);
        tt.slot_mut(a).parent = Some((0, 'x'));
        let b = tt.intern(&[2]);
        tt.slot_mut(b).parent = Some((a, 'y'));
        assert_eq!(tt.reconstruct_moves(b), vec!['x', 'y']);
    }
}

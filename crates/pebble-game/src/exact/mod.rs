//! Exact optimal-cost solvers for small DAGs.
//!
//! Both solvers run an A* search over pebbling configurations: the state of
//! the search is the full pebble placement (plus edge markings for PRBP),
//! transitions are the individual game moves, and the edge weights are the
//! I/O costs (compute and delete moves are free). States are stored in a
//! canonical packed encoding ([`crate::packed`]) and deduplicated through a
//! transposition table, so revisiting a configuration costs one hash lookup
//! and no fresh allocations.
//!
//! Since PR 6 the search itself lives in the unified anytime engine
//! ([`crate::engine`]); the entry points here are thin wrappers that run the
//! engine sequentially with a distinct-state budget, which reproduces the
//! historical solver behaviour (and statistics) exactly. Callers that want
//! deadlines, cancellation, incumbent streaming or multi-worker solves
//! should use [`crate::engine::solve_rbp`] / [`crate::engine::solve_prbp`]
//! directly.
//!
//! The heuristic is pluggable: anything implementing [`LowerBound`] — an
//! *admissible* lower bound on the remaining I/O — can guide the search
//! without changing the optimum it returns. [`ZeroHeuristic`] recovers plain
//! uniform-cost (Dijkstra) search; [`LoadCountHeuristic`] (the default for
//! the plain `optimal_*` entry points) counts mandatory future loads and
//! saves; the partition-based bounds of the paper's Section 6 are available
//! as heuristics from `pebble_bounds::heuristics`. The `*_with` entry points
//! also report [`SearchStats`] — expanded/generated/distinct state counts —
//! which benchmarks use as a hardware-independent performance metric.
//!
//! These searches are exponential in general (finding `OPT` is NP-hard,
//! Theorem 7.1), so they are intended for the paper's small gadget DAGs; the
//! [`SearchConfig::max_states`] limit guards against runaway instances.

pub mod heuristic;

pub use heuristic::{LoadCountHeuristic, LowerBound, PrbpStateView, RbpStateView, ZeroHeuristic};

use crate::engine::{self, EngineConfig, HeuristicSpec};
use crate::moves::Model;
use crate::prbp::PrbpConfig;
use crate::rbp::RbpConfig;
use crate::trace::{PrbpTrace, RbpTrace};
use pebble_dag::Dag;
use std::fmt;

/// Limits for the exact search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Maximum number of distinct states to explore before giving up.
    pub max_states: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_states: 5_000_000,
        }
    }
}

impl SearchConfig {
    /// A search limited to `max_states` explored states.
    pub fn with_max_states(max_states: usize) -> Self {
        SearchConfig { max_states }
    }
}

/// Counters describing how much work an exact search did. `expanded` is the
/// hardware-independent metric benchmarks track: the number of states popped
/// from the frontier and expanded into successors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// States popped from the frontier and expanded.
    pub expanded: usize,
    /// Successor states generated (before duplicate detection).
    pub generated: usize,
    /// Distinct states interned in the transposition table.
    pub distinct: usize,
}

/// A solved instance: the optimal cost plus the search-effort counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Solved {
    /// The optimal I/O cost.
    pub cost: usize,
    /// How much work the search did to prove it.
    pub stats: SearchStats,
}

/// Why an exact search did not return an optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactError {
    /// No valid pebbling exists for this DAG and cache size (e.g. RBP with
    /// `r < Δ_in + 1`).
    Unsolvable,
    /// The state limit was reached before the search completed.
    StateLimitExceeded {
        /// Number of states explored when the search stopped.
        explored: usize,
    },
    /// An anytime solve was stopped (deadline or cancellation) before any
    /// incumbent schedule was found. Only engine solves with a deadline or
    /// cancel token can produce this.
    Interrupted {
        /// Number of states explored when the solve was stopped.
        explored: usize,
    },
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::Unsolvable => write!(f, "no valid pebbling exists"),
            ExactError::StateLimitExceeded { explored } => {
                write!(f, "state limit exceeded after exploring {explored} states")
            }
            ExactError::Interrupted { explored } => {
                write!(
                    f,
                    "solve interrupted after exploring {explored} states with no incumbent"
                )
            }
        }
    }
}

impl std::error::Error for ExactError {}

fn sequential_budget(search: SearchConfig) -> EngineConfig {
    EngineConfig {
        node_budget: Some(search.max_states),
        ..EngineConfig::default()
    }
}

/// Optimal I/O cost of pebbling `dag` under `config` (default heuristic).
pub fn optimal_rbp_cost(
    dag: &Dag,
    config: RbpConfig,
    search: SearchConfig,
) -> Result<usize, ExactError> {
    optimal_rbp_cost_with(dag, config, search, &LoadCountHeuristic).map(|s| s.cost)
}

/// Optimal I/O cost together with one optimal pebbling trace (default
/// heuristic).
pub fn optimal_rbp_trace(
    dag: &Dag,
    config: RbpConfig,
    search: SearchConfig,
) -> Result<(usize, RbpTrace), ExactError> {
    optimal_rbp_trace_with(dag, config, search, &LoadCountHeuristic)
        .map(|(s, trace)| (s.cost, trace))
}

/// Optimal RBP cost under an explicit A* heuristic, with search statistics.
pub fn optimal_rbp_cost_with(
    dag: &Dag,
    config: RbpConfig,
    search: SearchConfig,
    heuristic: &dyn LowerBound,
) -> Result<Solved, ExactError> {
    engine::solve_rbp(
        dag,
        config,
        &sequential_budget(search),
        HeuristicSpec::Single(heuristic),
        None,
        None,
    )
    .map(|out| Solved {
        cost: out.cost,
        stats: out.stats,
    })
}

/// Optimal RBP cost, statistics and one optimal trace under an explicit A*
/// heuristic.
pub fn optimal_rbp_trace_with(
    dag: &Dag,
    config: RbpConfig,
    search: SearchConfig,
    heuristic: &dyn LowerBound,
) -> Result<(Solved, RbpTrace), ExactError> {
    engine::solve_rbp(
        dag,
        config,
        &sequential_budget(search),
        HeuristicSpec::Single(heuristic),
        None,
        None,
    )
    .map(|out| {
        (
            Solved {
                cost: out.cost,
                stats: out.stats,
            },
            out.trace,
        )
    })
}

/// Optimal I/O cost of pebbling `dag` under `config` in PRBP (default
/// heuristic).
pub fn optimal_prbp_cost(
    dag: &Dag,
    config: PrbpConfig,
    search: SearchConfig,
) -> Result<usize, ExactError> {
    optimal_prbp_cost_with(dag, config, search, &LoadCountHeuristic).map(|s| s.cost)
}

/// Optimal I/O cost together with one optimal PRBP pebbling trace (default
/// heuristic).
pub fn optimal_prbp_trace(
    dag: &Dag,
    config: PrbpConfig,
    search: SearchConfig,
) -> Result<(usize, PrbpTrace), ExactError> {
    optimal_prbp_trace_with(dag, config, search, &LoadCountHeuristic)
        .map(|(s, trace)| (s.cost, trace))
}

/// Optimal PRBP cost under an explicit A* heuristic, with search statistics.
pub fn optimal_prbp_cost_with(
    dag: &Dag,
    config: PrbpConfig,
    search: SearchConfig,
    heuristic: &dyn LowerBound,
) -> Result<Solved, ExactError> {
    engine::solve_prbp(
        dag,
        config,
        &sequential_budget(search),
        HeuristicSpec::Single(heuristic),
        None,
        None,
    )
    .map(|out| Solved {
        cost: out.cost,
        stats: out.stats,
    })
}

/// Optimal PRBP cost, statistics and one optimal trace under an explicit A*
/// heuristic.
pub fn optimal_prbp_trace_with(
    dag: &Dag,
    config: PrbpConfig,
    search: SearchConfig,
    heuristic: &dyn LowerBound,
) -> Result<(Solved, PrbpTrace), ExactError> {
    engine::solve_prbp(
        dag,
        config,
        &sequential_budget(search),
        HeuristicSpec::Single(heuristic),
        None,
        None,
    )
    .map(|out| {
        (
            Solved {
                cost: out.cost,
                stats: out.stats,
            },
            out.trace,
        )
    })
}

/// Evaluate a heuristic on the *initial* RBP state (blue pebbles on all
/// sources, nothing in fast memory). For an admissible heuristic this is a
/// valid lower bound on `OPT_RBP`, which makes it directly comparable to the
/// exact optimum in tests and experiments.
pub fn rbp_initial_bound(dag: &Dag, config: RbpConfig, heuristic: &dyn LowerBound) -> usize {
    let words = engine::rbp_start_words(dag);
    heuristic.rbp_bound(dag, config, &RbpStateView::new(&words, dag.node_count()))
}

/// Evaluate a heuristic on the *initial* PRBP state (blue pebbles on all
/// sources, all edges unmarked). For an admissible heuristic this is a valid
/// lower bound on `OPT_PRBP`.
pub fn prbp_initial_bound(dag: &Dag, config: PrbpConfig, heuristic: &dyn LowerBound) -> usize {
    let words = engine::prbp_start_words(dag);
    heuristic.prbp_bound(
        dag,
        config,
        &PrbpStateView::new(&words, dag.node_count(), dag.edge_count()),
    )
}

/// Optimal I/O cost of pebbling `dag` with cache size `r` in the given model
/// (standard one-shot rules, default search limits).
pub fn optimal_cost(dag: &Dag, r: usize, model: Model) -> Result<usize, ExactError> {
    match model {
        Model::Rbp => optimal_rbp_cost(dag, RbpConfig::new(r), SearchConfig::default()),
        Model::Prbp => optimal_prbp_cost(dag, PrbpConfig::new(r), SearchConfig::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::DagBuilder;

    #[test]
    fn optimal_cost_dispatches_both_models() {
        // a, b -> c: RBP needs r >= 3, PRBP works with r = 2.
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[2]);
        let g = b.build().unwrap();
        assert_eq!(optimal_cost(&g, 3, Model::Rbp).unwrap(), 3);
        assert_eq!(optimal_cost(&g, 2, Model::Rbp), Err(ExactError::Unsolvable));
        assert_eq!(optimal_cost(&g, 2, Model::Prbp).unwrap(), 3);
        assert_eq!(optimal_cost(&g, 3, Model::Prbp).unwrap(), 3);
    }

    #[test]
    fn search_config_default_and_override() {
        assert_eq!(SearchConfig::default().max_states, 5_000_000);
        assert_eq!(SearchConfig::with_max_states(10).max_states, 10);
    }

    #[test]
    fn error_display() {
        assert!(ExactError::Unsolvable.to_string().contains("no valid"));
        assert!(ExactError::StateLimitExceeded { explored: 7 }
            .to_string()
            .contains('7'));
        assert!(ExactError::Interrupted { explored: 9 }
            .to_string()
            .contains("interrupted"));
    }

    #[test]
    fn with_variants_report_consistent_stats() {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[2]);
        let g = b.build().unwrap();
        let solved = optimal_rbp_cost_with(
            &g,
            RbpConfig::new(3),
            SearchConfig::default(),
            &ZeroHeuristic,
        )
        .unwrap();
        assert_eq!(solved.cost, 3);
        assert!(solved.stats.distinct >= solved.stats.expanded);
        assert!(solved.stats.generated >= solved.stats.expanded);
        let (solved2, trace) = optimal_prbp_trace_with(
            &g,
            PrbpConfig::new(2),
            SearchConfig::default(),
            &LoadCountHeuristic,
        )
        .unwrap();
        assert_eq!(solved2.cost, 3);
        assert_eq!(
            trace.validate(&g, PrbpConfig::new(2)).unwrap(),
            solved2.cost
        );
    }

    #[test]
    fn initial_bounds_do_not_exceed_optima() {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[2]);
        let g = b.build().unwrap();
        let h = rbp_initial_bound(&g, RbpConfig::new(3), &LoadCountHeuristic);
        assert!(h <= optimal_cost(&g, 3, Model::Rbp).unwrap());
        let h = prbp_initial_bound(&g, PrbpConfig::new(2), &LoadCountHeuristic);
        assert!(h <= optimal_cost(&g, 2, Model::Prbp).unwrap());
    }

    mod rbp {
        use super::super::*;
        use pebble_dag::generators::{binary_tree, fig1_full, pyramid};
        use pebble_dag::DagBuilder;

        #[test]
        fn chain_has_trivial_cost_only() {
            let mut b = DagBuilder::new();
            let n = b.add_nodes(4);
            for w in n.windows(2) {
                b.add_edge(w[0], w[1]);
            }
            let g = b.build().unwrap();
            assert_eq!(
                optimal_rbp_cost(&g, RbpConfig::new(2), SearchConfig::default()).unwrap(),
                2
            );
        }

        #[test]
        fn infeasible_when_cache_too_small() {
            let mut b = DagBuilder::new();
            let n = b.add_nodes(3);
            b.add_edge(n[0], n[2]);
            b.add_edge(n[1], n[2]);
            let g = b.build().unwrap();
            assert_eq!(
                optimal_rbp_cost(&g, RbpConfig::new(2), SearchConfig::default()),
                Err(ExactError::Unsolvable)
            );
            // Sliding reduces the requirement by one pebble.
            assert_eq!(
                optimal_rbp_cost(
                    &g,
                    RbpConfig::new(2).with_sliding(),
                    SearchConfig::default()
                )
                .unwrap(),
                3
            );
        }

        #[test]
        fn fig1_optimum_is_three_with_r4() {
            // Proposition 4.2: OPT_RBP = 3.
            let f = fig1_full();
            assert_eq!(
                optimal_rbp_cost(&f.dag, RbpConfig::new(4), SearchConfig::default()).unwrap(),
                3
            );
        }

        #[test]
        fn fig1_recomputation_reaches_two() {
            // Appendix B.1: with re-computation, OPT_RBP drops to 2 on Figure 1.
            let f = fig1_full();
            assert_eq!(
                optimal_rbp_cost(
                    &f.dag,
                    RbpConfig::new(4).with_recompute(),
                    SearchConfig::default()
                )
                .unwrap(),
                2
            );
        }

        #[test]
        fn fig1_sliding_reaches_two() {
            // Appendix B.2: with sliding pebbles, OPT_RBP also drops to 2 on
            // Figure 1.
            let f = fig1_full();
            assert_eq!(
                optimal_rbp_cost(
                    &f.dag,
                    RbpConfig::new(4).with_sliding(),
                    SearchConfig::default()
                )
                .unwrap(),
                2
            );
        }

        #[test]
        fn binary_tree_depth2_matches_formula() {
            // Appendix A.2 formula: the non-trivial I/O is 2^d - 2 and the
            // trivial cost is 2^d + 1 for depth d with r = 3.
            let d = 2;
            let g = binary_tree(d);
            let expected = (1usize << d) + 1 + ((1usize << d) - 2);
            assert_eq!(
                optimal_rbp_cost(&g, RbpConfig::new(3), SearchConfig::default()).unwrap(),
                expected
            );
        }

        #[test]
        fn optimal_trace_replays_to_optimal_cost() {
            let f = fig1_full();
            let (cost, trace) =
                optimal_rbp_trace(&f.dag, RbpConfig::new(4), SearchConfig::default()).unwrap();
            assert_eq!(cost, 3);
            assert_eq!(trace.validate(&f.dag, RbpConfig::new(4)).unwrap(), 3);
        }

        #[test]
        fn pyramid_with_ample_cache_has_trivial_cost() {
            let p = pyramid(4);
            let trivial = p.dag.trivial_cost();
            assert_eq!(
                optimal_rbp_cost(&p.dag, RbpConfig::new(10), SearchConfig::default()).unwrap(),
                trivial
            );
        }

        #[test]
        fn state_limit_is_reported() {
            let f = fig1_full();
            let result =
                optimal_rbp_cost(&f.dag, RbpConfig::new(4), SearchConfig::with_max_states(3));
            assert!(matches!(result, Err(ExactError::StateLimitExceeded { .. })));
        }

        #[test]
        fn stats_are_populated_and_zero_expands_more() {
            let f = fig1_full();
            let zero = optimal_rbp_cost_with(
                &f.dag,
                RbpConfig::new(4),
                SearchConfig::default(),
                &ZeroHeuristic,
            )
            .unwrap();
            let load = optimal_rbp_cost_with(
                &f.dag,
                RbpConfig::new(4),
                SearchConfig::default(),
                &LoadCountHeuristic,
            )
            .unwrap();
            assert_eq!(zero.cost, load.cost);
            assert!(zero.stats.expanded > 0 && load.stats.expanded > 0);
            assert!(load.stats.expanded <= zero.stats.expanded);
            assert!(load.stats.distinct > 0);
        }
    }

    mod prbp {
        use super::super::*;
        use pebble_dag::generators::{fig1_full, fig1_gadget};
        use pebble_dag::DagBuilder;

        #[test]
        fn chain_needs_only_trivial_cost_with_r2() {
            let mut b = DagBuilder::new();
            let n = b.add_nodes(5);
            for w in n.windows(2) {
                b.add_edge(w[0], w[1]);
            }
            let g = b.build().unwrap();
            assert_eq!(
                optimal_prbp_cost(&g, PrbpConfig::new(2), SearchConfig::default()).unwrap(),
                2
            );
        }

        #[test]
        fn high_in_degree_node_pebbled_with_two_reds() {
            // A single aggregation node with 4 inputs: RBP would need r = 5,
            // PRBP manages with r = 2 at trivial cost.
            let mut b = DagBuilder::new();
            let srcs = b.add_nodes(4);
            let sink = b.add_node();
            for &s in &srcs {
                b.add_edge(s, sink);
            }
            let g = b.build().unwrap();
            assert_eq!(
                optimal_prbp_cost(&g, PrbpConfig::new(2), SearchConfig::default()).unwrap(),
                5
            );
        }

        #[test]
        fn cache_of_one_is_unsolvable() {
            let mut b = DagBuilder::new();
            let n = b.add_nodes(2);
            b.add_edge(n[0], n[1]);
            let g = b.build().unwrap();
            assert_eq!(
                optimal_prbp_cost(&g, PrbpConfig::new(1), SearchConfig::default()),
                Err(ExactError::Unsolvable)
            );
        }

        #[test]
        fn fig1_optimum_is_two_with_r4() {
            // Proposition 4.2: OPT_PRBP = 2.
            let f = fig1_full();
            assert_eq!(
                optimal_prbp_cost(&f.dag, PrbpConfig::new(4), SearchConfig::default()).unwrap(),
                2
            );
        }

        #[test]
        fn fig1_gadget_alone_costs_four_with_r4() {
            // The standalone 8-node gadget: 2 sources + 2 sinks = trivial
            // cost 4, and PRBP achieves it.
            let g = fig1_gadget();
            assert_eq!(
                optimal_prbp_cost(&g.dag, PrbpConfig::new(4), SearchConfig::default()).unwrap(),
                4
            );
        }

        #[test]
        fn optimal_trace_replays_to_optimal_cost() {
            let f = fig1_full();
            let (cost, trace) =
                optimal_prbp_trace(&f.dag, PrbpConfig::new(4), SearchConfig::default()).unwrap();
            assert_eq!(cost, 2);
            assert_eq!(trace.validate(&f.dag, PrbpConfig::new(4)).unwrap(), 2);
        }

        #[test]
        fn prbp_never_beats_rbp_from_below_on_chain() {
            // Sanity: on a plain chain both models have the same optimum.
            let mut b = DagBuilder::new();
            let n = b.add_nodes(4);
            for w in n.windows(2) {
                b.add_edge(w[0], w[1]);
            }
            let g = b.build().unwrap();
            let rbp = optimal_rbp_cost(&g, RbpConfig::new(2), SearchConfig::default()).unwrap();
            let prbp = optimal_prbp_cost(&g, PrbpConfig::new(2), SearchConfig::default()).unwrap();
            assert_eq!(rbp, prbp);
        }

        #[test]
        fn state_limit_is_reported() {
            let f = fig1_full();
            let result =
                optimal_prbp_cost(&f.dag, PrbpConfig::new(4), SearchConfig::with_max_states(3));
            assert!(matches!(result, Err(ExactError::StateLimitExceeded { .. })));
        }

        #[test]
        fn stats_are_populated_and_zero_expands_more() {
            let f = fig1_full();
            let zero = optimal_prbp_cost_with(
                &f.dag,
                PrbpConfig::new(4),
                SearchConfig::default(),
                &ZeroHeuristic,
            )
            .unwrap();
            let load = optimal_prbp_cost_with(
                &f.dag,
                PrbpConfig::new(4),
                SearchConfig::default(),
                &LoadCountHeuristic,
            )
            .unwrap();
            assert_eq!(zero.cost, load.cost);
            assert!(load.stats.expanded <= zero.stats.expanded);
        }
    }
}

//! Exact optimal-cost solvers for small DAGs.
//!
//! Both solvers run an A*-style uniform-cost search over pebbling
//! configurations: the state of the search is the full pebble placement (plus
//! edge markings for PRBP), transitions are the individual game moves, and
//! the edge weights are the I/O costs (compute and delete moves are free).
//! The heuristic counts sources that will still have to be loaded and sinks
//! that will still have to be saved, which is admissible in both models.
//!
//! These searches are exponential in general (finding `OPT` is NP-hard,
//! Theorem 7.1), so they are intended for the paper's small gadget DAGs; the
//! [`SearchConfig::max_states`] limit guards against runaway instances.

mod prbp_solver;
mod rbp_solver;

pub use prbp_solver::{optimal_prbp_cost, optimal_prbp_trace};
pub use rbp_solver::{optimal_rbp_cost, optimal_rbp_trace};

use crate::moves::Model;
use crate::prbp::PrbpConfig;
use crate::rbp::RbpConfig;
use pebble_dag::Dag;
use std::fmt;

/// Limits for the exact search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Maximum number of distinct states to explore before giving up.
    pub max_states: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_states: 5_000_000,
        }
    }
}

impl SearchConfig {
    /// A search limited to `max_states` explored states.
    pub fn with_max_states(max_states: usize) -> Self {
        SearchConfig { max_states }
    }
}

/// Why an exact search did not return an optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactError {
    /// No valid pebbling exists for this DAG and cache size (e.g. RBP with
    /// `r < Δ_in + 1`).
    Unsolvable,
    /// The state limit was reached before the search completed.
    StateLimitExceeded {
        /// Number of states explored when the search stopped.
        explored: usize,
    },
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::Unsolvable => write!(f, "no valid pebbling exists"),
            ExactError::StateLimitExceeded { explored } => {
                write!(f, "state limit exceeded after exploring {explored} states")
            }
        }
    }
}

impl std::error::Error for ExactError {}

/// Optimal I/O cost of pebbling `dag` with cache size `r` in the given model
/// (standard one-shot rules, default search limits).
pub fn optimal_cost(dag: &Dag, r: usize, model: Model) -> Result<usize, ExactError> {
    match model {
        Model::Rbp => optimal_rbp_cost(dag, RbpConfig::new(r), SearchConfig::default()),
        Model::Prbp => optimal_prbp_cost(dag, PrbpConfig::new(r), SearchConfig::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::DagBuilder;

    #[test]
    fn optimal_cost_dispatches_both_models() {
        // a, b -> c: RBP needs r >= 3, PRBP works with r = 2.
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[2]);
        let g = b.build().unwrap();
        assert_eq!(optimal_cost(&g, 3, Model::Rbp).unwrap(), 3);
        assert_eq!(optimal_cost(&g, 2, Model::Rbp), Err(ExactError::Unsolvable));
        assert_eq!(optimal_cost(&g, 2, Model::Prbp).unwrap(), 3);
        assert_eq!(optimal_cost(&g, 3, Model::Prbp).unwrap(), 3);
    }

    #[test]
    fn search_config_default_and_override() {
        assert_eq!(SearchConfig::default().max_states, 5_000_000);
        assert_eq!(SearchConfig::with_max_states(10).max_states, 10);
    }

    #[test]
    fn error_display() {
        assert!(ExactError::Unsolvable.to_string().contains("no valid"));
        assert!(ExactError::StateLimitExceeded { explored: 7 }
            .to_string()
            .contains('7'));
    }
}

//! Exact optimal-cost solvers for small DAGs.
//!
//! Both solvers run an A* search over pebbling configurations: the state of
//! the search is the full pebble placement (plus edge markings for PRBP),
//! transitions are the individual game moves, and the edge weights are the
//! I/O costs (compute and delete moves are free). States are stored in a
//! canonical packed encoding (`exact/state.rs`) and deduplicated through a
//! transposition table, so revisiting a configuration costs one hash lookup
//! and no fresh allocations.
//!
//! The heuristic is pluggable: anything implementing [`LowerBound`] — an
//! *admissible* lower bound on the remaining I/O — can guide the search
//! without changing the optimum it returns. [`ZeroHeuristic`] recovers plain
//! uniform-cost (Dijkstra) search; [`LoadCountHeuristic`] (the default for
//! the plain `optimal_*` entry points) counts mandatory future loads and
//! saves; the partition-based bounds of the paper's Section 6 are available
//! as heuristics from `pebble_bounds::heuristics`. The `*_with` entry points
//! also report [`SearchStats`] — expanded/generated/distinct state counts —
//! which benchmarks use as a hardware-independent performance metric.
//!
//! These searches are exponential in general (finding `OPT` is NP-hard,
//! Theorem 7.1), so they are intended for the paper's small gadget DAGs; the
//! [`SearchConfig::max_states`] limit guards against runaway instances.

pub mod heuristic;
mod prbp_solver;
mod rbp_solver;
mod state;

pub use heuristic::{LoadCountHeuristic, LowerBound, PrbpStateView, RbpStateView, ZeroHeuristic};

use crate::moves::Model;
use crate::prbp::PrbpConfig;
use crate::rbp::RbpConfig;
use crate::trace::{PrbpTrace, RbpTrace};
use pebble_dag::Dag;
use std::fmt;

/// Limits for the exact search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Maximum number of distinct states to explore before giving up.
    pub max_states: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_states: 5_000_000,
        }
    }
}

impl SearchConfig {
    /// A search limited to `max_states` explored states.
    pub fn with_max_states(max_states: usize) -> Self {
        SearchConfig { max_states }
    }
}

/// Counters describing how much work an exact search did. `expanded` is the
/// hardware-independent metric benchmarks track: the number of states popped
/// from the frontier and expanded into successors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// States popped from the frontier and expanded.
    pub expanded: usize,
    /// Successor states generated (before duplicate detection).
    pub generated: usize,
    /// Distinct states interned in the transposition table.
    pub distinct: usize,
}

/// A solved instance: the optimal cost plus the search-effort counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Solved {
    /// The optimal I/O cost.
    pub cost: usize,
    /// How much work the search did to prove it.
    pub stats: SearchStats,
}

/// Why an exact search did not return an optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactError {
    /// No valid pebbling exists for this DAG and cache size (e.g. RBP with
    /// `r < Δ_in + 1`).
    Unsolvable,
    /// The state limit was reached before the search completed.
    StateLimitExceeded {
        /// Number of states explored when the search stopped.
        explored: usize,
    },
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::Unsolvable => write!(f, "no valid pebbling exists"),
            ExactError::StateLimitExceeded { explored } => {
                write!(f, "state limit exceeded after exploring {explored} states")
            }
        }
    }
}

impl std::error::Error for ExactError {}

/// Optimal I/O cost of pebbling `dag` under `config` (default heuristic).
pub fn optimal_rbp_cost(
    dag: &Dag,
    config: RbpConfig,
    search: SearchConfig,
) -> Result<usize, ExactError> {
    optimal_rbp_cost_with(dag, config, search, &LoadCountHeuristic).map(|s| s.cost)
}

/// Optimal I/O cost together with one optimal pebbling trace (default
/// heuristic).
pub fn optimal_rbp_trace(
    dag: &Dag,
    config: RbpConfig,
    search: SearchConfig,
) -> Result<(usize, RbpTrace), ExactError> {
    optimal_rbp_trace_with(dag, config, search, &LoadCountHeuristic)
        .map(|(s, trace)| (s.cost, trace))
}

/// Optimal RBP cost under an explicit A* heuristic, with search statistics.
pub fn optimal_rbp_cost_with(
    dag: &Dag,
    config: RbpConfig,
    search: SearchConfig,
    heuristic: &dyn LowerBound,
) -> Result<Solved, ExactError> {
    rbp_solver::solve_with(dag, config, search, heuristic, false)
        .map(|(cost, stats, _)| Solved { cost, stats })
}

/// Optimal RBP cost, statistics and one optimal trace under an explicit A*
/// heuristic.
pub fn optimal_rbp_trace_with(
    dag: &Dag,
    config: RbpConfig,
    search: SearchConfig,
    heuristic: &dyn LowerBound,
) -> Result<(Solved, RbpTrace), ExactError> {
    rbp_solver::solve_with(dag, config, search, heuristic, true).map(|(cost, stats, trace)| {
        (
            Solved { cost, stats },
            trace.expect("trace requested from solver"),
        )
    })
}

/// Optimal I/O cost of pebbling `dag` under `config` in PRBP (default
/// heuristic).
pub fn optimal_prbp_cost(
    dag: &Dag,
    config: PrbpConfig,
    search: SearchConfig,
) -> Result<usize, ExactError> {
    optimal_prbp_cost_with(dag, config, search, &LoadCountHeuristic).map(|s| s.cost)
}

/// Optimal I/O cost together with one optimal PRBP pebbling trace (default
/// heuristic).
pub fn optimal_prbp_trace(
    dag: &Dag,
    config: PrbpConfig,
    search: SearchConfig,
) -> Result<(usize, PrbpTrace), ExactError> {
    optimal_prbp_trace_with(dag, config, search, &LoadCountHeuristic)
        .map(|(s, trace)| (s.cost, trace))
}

/// Optimal PRBP cost under an explicit A* heuristic, with search statistics.
pub fn optimal_prbp_cost_with(
    dag: &Dag,
    config: PrbpConfig,
    search: SearchConfig,
    heuristic: &dyn LowerBound,
) -> Result<Solved, ExactError> {
    prbp_solver::solve_with(dag, config, search, heuristic, false)
        .map(|(cost, stats, _)| Solved { cost, stats })
}

/// Optimal PRBP cost, statistics and one optimal trace under an explicit A*
/// heuristic.
pub fn optimal_prbp_trace_with(
    dag: &Dag,
    config: PrbpConfig,
    search: SearchConfig,
    heuristic: &dyn LowerBound,
) -> Result<(Solved, PrbpTrace), ExactError> {
    prbp_solver::solve_with(dag, config, search, heuristic, true).map(|(cost, stats, trace)| {
        (
            Solved { cost, stats },
            trace.expect("trace requested from solver"),
        )
    })
}

/// Evaluate a heuristic on the *initial* RBP state (blue pebbles on all
/// sources, nothing in fast memory). For an admissible heuristic this is a
/// valid lower bound on `OPT_RBP`, which makes it directly comparable to the
/// exact optimum in tests and experiments.
pub fn rbp_initial_bound(dag: &Dag, config: RbpConfig, heuristic: &dyn LowerBound) -> usize {
    let words = rbp_solver::start_words(dag);
    heuristic.rbp_bound(dag, config, &RbpStateView::new(&words, dag.node_count()))
}

/// Evaluate a heuristic on the *initial* PRBP state (blue pebbles on all
/// sources, all edges unmarked). For an admissible heuristic this is a valid
/// lower bound on `OPT_PRBP`.
pub fn prbp_initial_bound(dag: &Dag, config: PrbpConfig, heuristic: &dyn LowerBound) -> usize {
    let words = prbp_solver::start_words(dag);
    heuristic.prbp_bound(
        dag,
        config,
        &PrbpStateView::new(&words, dag.node_count(), dag.edge_count()),
    )
}

/// Optimal I/O cost of pebbling `dag` with cache size `r` in the given model
/// (standard one-shot rules, default search limits).
pub fn optimal_cost(dag: &Dag, r: usize, model: Model) -> Result<usize, ExactError> {
    match model {
        Model::Rbp => optimal_rbp_cost(dag, RbpConfig::new(r), SearchConfig::default()),
        Model::Prbp => optimal_prbp_cost(dag, PrbpConfig::new(r), SearchConfig::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::DagBuilder;

    #[test]
    fn optimal_cost_dispatches_both_models() {
        // a, b -> c: RBP needs r >= 3, PRBP works with r = 2.
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[2]);
        let g = b.build().unwrap();
        assert_eq!(optimal_cost(&g, 3, Model::Rbp).unwrap(), 3);
        assert_eq!(optimal_cost(&g, 2, Model::Rbp), Err(ExactError::Unsolvable));
        assert_eq!(optimal_cost(&g, 2, Model::Prbp).unwrap(), 3);
        assert_eq!(optimal_cost(&g, 3, Model::Prbp).unwrap(), 3);
    }

    #[test]
    fn search_config_default_and_override() {
        assert_eq!(SearchConfig::default().max_states, 5_000_000);
        assert_eq!(SearchConfig::with_max_states(10).max_states, 10);
    }

    #[test]
    fn error_display() {
        assert!(ExactError::Unsolvable.to_string().contains("no valid"));
        assert!(ExactError::StateLimitExceeded { explored: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn with_variants_report_consistent_stats() {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[2]);
        let g = b.build().unwrap();
        let solved = optimal_rbp_cost_with(
            &g,
            RbpConfig::new(3),
            SearchConfig::default(),
            &ZeroHeuristic,
        )
        .unwrap();
        assert_eq!(solved.cost, 3);
        assert!(solved.stats.distinct >= solved.stats.expanded);
        assert!(solved.stats.generated >= solved.stats.expanded);
        let (solved2, trace) = optimal_prbp_trace_with(
            &g,
            PrbpConfig::new(2),
            SearchConfig::default(),
            &LoadCountHeuristic,
        )
        .unwrap();
        assert_eq!(solved2.cost, 3);
        assert_eq!(
            trace.validate(&g, PrbpConfig::new(2)).unwrap(),
            solved2.cost
        );
    }

    #[test]
    fn initial_bounds_do_not_exceed_optima() {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[2]);
        let g = b.build().unwrap();
        let h = rbp_initial_bound(&g, RbpConfig::new(3), &LoadCountHeuristic);
        assert!(h <= optimal_cost(&g, 3, Model::Rbp).unwrap());
        let h = prbp_initial_bound(&g, PrbpConfig::new(2), &LoadCountHeuristic);
        assert!(h <= optimal_cost(&g, 2, Model::Prbp).unwrap());
    }
}

//! Recorded pebbling strategies (traces) that can be replayed, validated,
//! printed and serialised.
//!
//! Validation has a streaming form ([`validate_rbp_moves`] /
//! [`validate_prbp_moves`]): any move iterator is replayed through a fresh
//! game in `O(1)` extra memory per move, so a pebbling never has to be
//! materialised just to be checked. The trace methods delegate to it.

use crate::moves::{PrbpMove, RbpMove};
use crate::prbp::{PrbpConfig, PrbpError, PrbpGame};
use crate::rbp::{RbpConfig, RbpError, RbpGame};
use pebble_dag::Dag;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Replay a stream of RBP moves on `dag` under `config`, checking every move
/// and the terminal condition, without materialising the stream. Returns the
/// validated I/O cost.
pub fn validate_rbp_moves<I>(
    dag: &Dag,
    config: RbpConfig,
    moves: I,
) -> Result<usize, TraceError<RbpError>>
where
    I: IntoIterator<Item = RbpMove>,
{
    let mut game = RbpGame::new(dag, config);
    for (i, mv) in moves.into_iter().enumerate() {
        game.apply(mv).map_err(|error| TraceError::InvalidMove {
            index: i,
            description: mv.to_string(),
            error,
        })?;
    }
    if !game.is_terminal() {
        return Err(TraceError::NotTerminal);
    }
    Ok(game.io_cost())
}

/// Replay a stream of PRBP moves on `dag` under `config`, checking every move
/// and the terminal condition, without materialising the stream. Returns the
/// validated I/O cost.
pub fn validate_prbp_moves<I>(
    dag: &Dag,
    config: PrbpConfig,
    moves: I,
) -> Result<usize, TraceError<PrbpError>>
where
    I: IntoIterator<Item = PrbpMove>,
{
    let mut game = PrbpGame::new(dag, config);
    for (i, mv) in moves.into_iter().enumerate() {
        game.apply(mv).map_err(|error| TraceError::InvalidMove {
            index: i,
            description: mv.to_string(),
            error,
        })?;
    }
    if !game.is_terminal() {
        return Err(TraceError::NotTerminal);
    }
    Ok(game.io_cost())
}

/// A recorded sequence of RBP moves.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RbpTrace {
    /// The moves in execution order.
    pub moves: Vec<RbpMove>,
}

impl RbpTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a trace from a move list.
    pub fn from_moves(moves: Vec<RbpMove>) -> Self {
        RbpTrace { moves }
    }

    /// Append a move.
    pub fn push(&mut self, mv: RbpMove) {
        self.moves.push(mv);
    }

    /// Number of moves.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Returns `true` if the trace contains no moves.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// I/O cost of the trace (number of loads + saves), computed without
    /// validation.
    pub fn io_cost(&self) -> usize {
        self.moves.iter().map(|m| m.io_cost()).sum()
    }

    /// Number of compute steps (including slides).
    pub fn compute_steps(&self) -> usize {
        self.moves.iter().filter(|m| m.is_compute()).count()
    }

    /// Replay the trace on `dag` under `config`, checking every move and the
    /// terminal condition. Returns the validated I/O cost.
    pub fn validate(&self, dag: &Dag, config: RbpConfig) -> Result<usize, TraceError<RbpError>> {
        validate_rbp_moves(dag, config, self.moves.iter().copied())
    }
}

impl fmt::Display for RbpTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, mv) in self.moves.iter().enumerate() {
            writeln!(f, "{i:>4}: {mv}")?;
        }
        Ok(())
    }
}

/// A recorded sequence of PRBP moves.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrbpTrace {
    /// The moves in execution order.
    pub moves: Vec<PrbpMove>,
}

impl PrbpTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a trace from a move list.
    pub fn from_moves(moves: Vec<PrbpMove>) -> Self {
        PrbpTrace { moves }
    }

    /// Append a move.
    pub fn push(&mut self, mv: PrbpMove) {
        self.moves.push(mv);
    }

    /// Number of moves.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Returns `true` if the trace contains no moves.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// I/O cost of the trace (number of loads + saves), computed without
    /// validation.
    pub fn io_cost(&self) -> usize {
        self.moves.iter().map(|m| m.io_cost()).sum()
    }

    /// Number of partial compute steps.
    pub fn compute_steps(&self) -> usize {
        self.moves.iter().filter(|m| m.is_compute()).count()
    }

    /// Replay the trace on `dag` under `config`, checking every move and the
    /// terminal condition. Returns the validated I/O cost.
    pub fn validate(&self, dag: &Dag, config: PrbpConfig) -> Result<usize, TraceError<PrbpError>> {
        validate_prbp_moves(dag, config, self.moves.iter().copied())
    }
}

impl fmt::Display for PrbpTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, mv) in self.moves.iter().enumerate() {
            writeln!(f, "{i:>4}: {mv}")?;
        }
        Ok(())
    }
}

/// Errors raised when validating a recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError<E> {
    /// A move was rejected by the simulator.
    InvalidMove {
        /// Index of the offending move within the trace.
        index: usize,
        /// Human-readable rendering of the move.
        description: String,
        /// The simulator error.
        error: E,
    },
    /// All moves were legal but the final state is not terminal.
    NotTerminal,
}

impl<E: fmt::Display> fmt::Display for TraceError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidMove {
                index,
                description,
                error,
            } => {
                write!(f, "move {index} ({description}) is invalid: {error}")
            }
            TraceError::NotTerminal => write!(f, "trace ends before reaching the terminal state"),
        }
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for TraceError<E> {}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::{DagBuilder, NodeId};

    fn chain3() -> Dag {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1]);
        b.add_edge(n[1], n[2]);
        b.build().unwrap()
    }

    #[test]
    fn rbp_trace_validation_and_cost() {
        let g = chain3();
        let trace = RbpTrace::from_moves(vec![
            RbpMove::Load(NodeId(0)),
            RbpMove::Compute(NodeId(1)),
            RbpMove::Compute(NodeId(2)),
            RbpMove::Save(NodeId(2)),
        ]);
        assert_eq!(trace.io_cost(), 2);
        assert_eq!(trace.compute_steps(), 2);
        assert_eq!(trace.validate(&g, RbpConfig::new(3)).unwrap(), 2);
        // With r = 2 the same trace exceeds capacity at the second compute.
        let err = trace.validate(&g, RbpConfig::new(2)).unwrap_err();
        match err {
            TraceError::InvalidMove { index, .. } => assert_eq!(index, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rbp_trace_not_terminal() {
        let g = chain3();
        let trace = RbpTrace::from_moves(vec![RbpMove::Load(NodeId(0))]);
        assert_eq!(
            trace.validate(&g, RbpConfig::new(3)),
            Err(TraceError::NotTerminal)
        );
    }

    #[test]
    fn prbp_trace_validation_and_cost() {
        let g = chain3();
        let trace = PrbpTrace::from_moves(vec![
            PrbpMove::Load(NodeId(0)),
            PrbpMove::PartialCompute {
                from: NodeId(0),
                to: NodeId(1),
            },
            PrbpMove::Delete(NodeId(0)),
            PrbpMove::PartialCompute {
                from: NodeId(1),
                to: NodeId(2),
            },
            PrbpMove::Save(NodeId(2)),
        ]);
        assert_eq!(trace.io_cost(), 2);
        assert_eq!(trace.validate(&g, PrbpConfig::new(3)).unwrap(), 2);
        assert_eq!(trace.validate(&g, PrbpConfig::new(2)).unwrap(), 2);
        assert!(trace.validate(&g, PrbpConfig::new(1)).is_err());
    }

    #[test]
    fn traces_serialise_roundtrip() {
        let trace = PrbpTrace::from_moves(vec![
            PrbpMove::Load(NodeId(0)),
            PrbpMove::PartialCompute {
                from: NodeId(0),
                to: NodeId(1),
            },
        ]);
        let json = serde_json::to_string(&trace).unwrap();
        let back: PrbpTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn display_lists_moves_in_order() {
        let trace =
            RbpTrace::from_moves(vec![RbpMove::Load(NodeId(0)), RbpMove::Compute(NodeId(1))]);
        let text = trace.to_string();
        assert!(text.contains("0: load 0"));
        assert!(text.contains("1: compute 1"));
    }
}

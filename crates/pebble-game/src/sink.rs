//! Move sinks: the visitor side of the streaming trace pipeline.
//!
//! The trace builders ([`crate::RbpBuilder`] / [`crate::PrbpBuilder`]) and the
//! greedy executors of `pebble-sched` historically accumulated every emitted
//! move into a `Vec` ([`RbpTrace`] / [`PrbpTrace`]). On million-node DAGs that
//! vector dwarfs the DAG itself, so the emitting side is now generic over a
//! [`MoveSink`]: each validated move is *visited* exactly once, in execution
//! order, and the sink decides whether to store it ([`RbpTrace`] and
//! [`PrbpTrace`] are themselves sinks), count it ([`CountingSink`]), replay it
//! into an independent simulator (`pebble-sched`'s streaming certifiers), or
//! drop it ([`DiscardSink`]).
//!
//! Nothing in the contract lets a sink reject a move — validation stays with
//! the emitter (the builders apply every move to a live game before
//! forwarding it). A sink that needs to detect errors on its own replay keeps
//! the failure internally and reports it when the stream ends.

use crate::moves::{PrbpMove, RbpMove};
use crate::trace::{PrbpTrace, RbpTrace};

/// A visitor receiving the moves of a pebbling in execution order.
pub trait MoveSink<M> {
    /// Visit the next move of the stream.
    fn record(&mut self, mv: M);
}

impl MoveSink<RbpMove> for RbpTrace {
    fn record(&mut self, mv: RbpMove) {
        self.push(mv);
    }
}

impl MoveSink<PrbpMove> for PrbpTrace {
    fn record(&mut self, mv: PrbpMove) {
        self.push(mv);
    }
}

/// A sink that drops every move; useful when only the emitter's own cost
/// accounting is of interest.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiscardSink;

impl<M> MoveSink<M> for DiscardSink {
    fn record(&mut self, _mv: M) {}
}

/// A sink that keeps running totals (move count and I/O cost) without storing
/// any move.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of moves visited.
    pub moves: usize,
    /// Sum of the visited moves' I/O costs.
    pub io: usize,
}

impl CountingSink {
    /// A fresh sink with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MoveSink<RbpMove> for CountingSink {
    fn record(&mut self, mv: RbpMove) {
        self.moves += 1;
        self.io += mv.io_cost();
    }
}

impl MoveSink<PrbpMove> for CountingSink {
    fn record(&mut self, mv: PrbpMove) {
        self.moves += 1;
        self.io += mv.io_cost();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::NodeId;

    #[test]
    fn traces_collect_moves() {
        let mut t = RbpTrace::new();
        MoveSink::record(&mut t, RbpMove::Load(NodeId(0)));
        MoveSink::record(&mut t, RbpMove::Compute(NodeId(1)));
        assert_eq!(t.len(), 2);
        assert_eq!(t.io_cost(), 1);
    }

    #[test]
    fn counting_sink_tracks_io_without_storing() {
        let mut c = CountingSink::new();
        c.record(PrbpMove::Load(NodeId(0)));
        c.record(PrbpMove::PartialCompute {
            from: NodeId(0),
            to: NodeId(1),
        });
        c.record(PrbpMove::Save(NodeId(1)));
        assert_eq!(c.moves, 3);
        assert_eq!(c.io, 2);
    }

    #[test]
    fn discard_sink_accepts_everything() {
        let mut d = DiscardSink;
        d.record(RbpMove::Load(NodeId(0)));
        d.record(PrbpMove::Delete(NodeId(0)));
    }
}

//! # pebble-game
//!
//! The red-blue pebble game (RBP) of Hong and Kung and its partial-computing
//! extension (PRBP) from *"The Impact of Partial Computations on the Red-Blue
//! Pebble Game"* (SPAA 2025).
//!
//! ## Models
//!
//! * **RBP** ([`rbp`]): red pebbles are values in fast memory (capacity `r`),
//!   blue pebbles are values in slow memory. A node is computed in one shot
//!   once all of its inputs hold red pebbles. Cost = number of load + save
//!   operations.
//! * **PRBP** ([`prbp`]): inputs are aggregated *one edge at a time* into the
//!   target value. Red pebbles come in two flavours — *light red* (value also
//!   up to date in slow memory) and *dark red* (value only in fast memory) —
//!   and incoming edges are *marked* as they are aggregated. Any RBP pebbling
//!   converts into a PRBP pebbling of the same cost ([`convert`],
//!   Proposition 4.1), and PRBP can pebble any DAG with as few as `r = 2` red
//!   pebbles.
//!
//! Both simulators validate every move against the transition rules of the
//! paper and enforce the one-shot restriction; model variants (sliding
//! pebbles, re-computation / the `clear` rule, compute costs, no-deletion —
//! Section 8.1 and Appendix B) are available through the configuration
//! structs and the [`variants`] module.
//!
//! ## Tooling
//!
//! * [`engine`] — the unified anytime search engine: cancellable,
//!   deadline-bounded, optionally parallel A* and beam search with a
//!   validated-incumbent channel; every solver below runs on it.
//! * [`exact`] — optimal-cost solvers (uniform-cost search over pebbling
//!   configurations) for small DAGs, used to reproduce the paper's
//!   propositions exactly; thin wrappers over [`engine`].
//! * [`strategies`] — constructive pebbling strategies for every structured
//!   DAG in the paper (matvec, trees, zipper, pebble collection, chained
//!   gadgets, FFT, matmul, attention) plus generic topological strategies.
//! * [`trace`] — recorded pebblings that can be replayed, validated, printed
//!   and serialised.
//! * [`builder`] — trace builders that validate every move against a live
//!   simulator at construction time (used by the `pebble-sched` schedulers).
//! * [`sink`] — the [`sink::MoveSink`] visitor trait fed by the builders, so
//!   long pebblings can be counted, validated or written out without ever
//!   materialising a move vector.
//! * [`packed`] — the canonical packed bit-plane state encoding shared by the
//!   exact solvers and the heuristic beam search.

#![deny(missing_docs)]

pub mod builder;
pub mod convert;
pub mod cost;
pub mod engine;
pub mod exact;
pub mod moves;
pub mod packed;
pub mod prbp;
pub mod rbp;
pub mod sink;
pub mod strategies;
pub mod trace;
pub mod variants;

pub use builder::{PrbpBuilder, RbpBuilder};
pub use cost::CostModel;
pub use moves::{Model, PrbpMove, RbpMove};
pub use prbp::{PebbleState, PrbpConfig, PrbpError, PrbpGame};
pub use rbp::{RbpConfig, RbpError, RbpGame};
pub use sink::{CountingSink, DiscardSink, MoveSink};
pub use trace::{validate_prbp_moves, validate_rbp_moves, PrbpTrace, RbpTrace};

//! Conversion of RBP pebblings into PRBP pebblings (Proposition 4.1).
//!
//! Any one-shot RBP strategy translates into a PRBP strategy of the same (or
//! lower) I/O cost: each compute step becomes at most `Δ_in` consecutive
//! partial compute steps, loads and deletes carry over unchanged, and saves
//! carry over whenever the value is actually dirty (a redundant RBP save of a
//! value that is already up to date in slow memory is dropped, which can only
//! decrease the cost).

use crate::moves::{PrbpMove, RbpMove};
use crate::prbp::{PebbleState, PrbpConfig, PrbpGame};
use crate::trace::{PrbpTrace, RbpTrace};
use pebble_dag::Dag;
use std::fmt;

/// Errors raised by [`rbp_to_prbp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvertError {
    /// The RBP trace contains a sliding move, which has no cost-preserving
    /// PRBP equivalent in general (the slide frees its source pebble at the
    /// same instant, while PRBP needs both pebbles momentarily).
    SlidingMove(usize),
    /// The converted move was rejected by the PRBP simulator; this indicates
    /// the original RBP trace was itself invalid (e.g. it relied on
    /// re-computation).
    InvalidAt {
        /// Index of the offending move in the RBP trace.
        index: usize,
        /// The PRBP simulator's rejection message.
        message: String,
    },
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::SlidingMove(i) => {
                write!(
                    f,
                    "RBP move {i} is a slide; sliding traces are not convertible"
                )
            }
            ConvertError::InvalidAt { index, message } => {
                write!(f, "conversion failed at RBP move {index}: {message}")
            }
        }
    }
}

impl std::error::Error for ConvertError {}

/// Convert a valid one-shot RBP trace into a PRBP trace of the same or lower
/// I/O cost (Proposition 4.1). The conversion is verified move by move on a
/// PRBP simulator with the same cache size `r`; the resulting trace is
/// guaranteed to replay successfully.
pub fn rbp_to_prbp(dag: &Dag, rbp_trace: &RbpTrace, r: usize) -> Result<PrbpTrace, ConvertError> {
    let mut game = PrbpGame::new(dag, PrbpConfig::new(r));
    let mut out = PrbpTrace::new();
    let push = |game: &mut PrbpGame, out: &mut PrbpTrace, index: usize, mv: PrbpMove| {
        game.apply(mv).map_err(|e| ConvertError::InvalidAt {
            index,
            message: format!("{mv}: {e}"),
        })?;
        out.push(mv);
        Ok::<(), ConvertError>(())
    };

    for (i, &mv) in rbp_trace.moves.iter().enumerate() {
        match mv {
            RbpMove::Load(v) => {
                // Skip loads of values that are already in fast memory (they
                // would still be legal, but dropping them can only reduce cost
                // and keeps the cost comparison exact for sensible traces).
                if !game.pebble_state(v).has_red() {
                    push(&mut game, &mut out, i, PrbpMove::Load(v))?;
                }
            }
            RbpMove::Save(v) => {
                // Only dirty (dark red) values need an actual save.
                if game.pebble_state(v) == PebbleState::DarkRed {
                    push(&mut game, &mut out, i, PrbpMove::Save(v))?;
                }
            }
            RbpMove::Compute(v) => {
                for &(u, _) in dag.in_edges(v) {
                    push(
                        &mut game,
                        &mut out,
                        i,
                        PrbpMove::PartialCompute { from: u, to: v },
                    )?;
                }
            }
            RbpMove::Delete(v) => {
                if game.pebble_state(v).has_red() {
                    push(&mut game, &mut out, i, PrbpMove::Delete(v))?;
                }
            }
            RbpMove::ComputeSlide { .. } => return Err(ConvertError::SlidingMove(i)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rbp::RbpConfig;
    use pebble_dag::generators::{binary_tree, fig1_full, matvec};
    use pebble_dag::{DagBuilder, NodeId};

    #[test]
    fn converts_simple_chain_at_equal_cost() {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1]);
        b.add_edge(n[1], n[2]);
        let g = b.build().unwrap();
        let rbp = RbpTrace::from_moves(vec![
            RbpMove::Load(NodeId(0)),
            RbpMove::Compute(NodeId(1)),
            RbpMove::Delete(NodeId(0)),
            RbpMove::Compute(NodeId(2)),
            RbpMove::Save(NodeId(2)),
        ]);
        let rbp_cost = rbp.validate(&g, RbpConfig::new(2)).unwrap();
        let prbp = rbp_to_prbp(&g, &rbp, 2).unwrap();
        let prbp_cost = prbp.validate(&g, PrbpConfig::new(2)).unwrap();
        assert_eq!(prbp_cost, rbp_cost);
    }

    #[test]
    fn converted_fig1_strategy_is_valid() {
        let f = fig1_full();
        let rbp = crate::strategies::fig1::rbp_optimal_trace(&f);
        let rbp_cost = rbp.validate(&f.dag, RbpConfig::new(4)).unwrap();
        let prbp = rbp_to_prbp(&f.dag, &rbp, 4).unwrap();
        let prbp_cost = prbp.validate(&f.dag, PrbpConfig::new(4)).unwrap();
        assert!(prbp_cost <= rbp_cost);
    }

    #[test]
    fn converted_topological_strategies_preserve_cost_bound() {
        // Proposition 4.1 on a variety of DAGs: the converted PRBP strategy is
        // valid and never more expensive.
        let dags: Vec<pebble_dag::Dag> = vec![binary_tree(3), matvec(3).dag, fig1_full().dag];
        for dag in &dags {
            let r = dag.max_in_degree() + 2;
            let rbp = crate::strategies::topological::rbp_topological(dag, r)
                .expect("topological RBP strategy exists");
            let rbp_cost = rbp.validate(dag, RbpConfig::new(r)).unwrap();
            let prbp = rbp_to_prbp(dag, &rbp, r).unwrap();
            let prbp_cost = prbp.validate(dag, PrbpConfig::new(r)).unwrap();
            assert!(prbp_cost <= rbp_cost, "PRBP {prbp_cost} > RBP {rbp_cost}");
        }
    }

    #[test]
    fn sliding_traces_are_rejected() {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1]);
        let g = b.build().unwrap();
        let rbp = RbpTrace::from_moves(vec![
            RbpMove::Load(NodeId(0)),
            RbpMove::ComputeSlide {
                node: NodeId(1),
                from: NodeId(0),
            },
            RbpMove::Save(NodeId(1)),
        ]);
        assert_eq!(rbp_to_prbp(&g, &rbp, 2), Err(ConvertError::SlidingMove(1)));
    }
}

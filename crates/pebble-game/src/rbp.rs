//! Simulator for the original (one-shot) red-blue pebble game, with the
//! optional model variants of Section 8.1 / Appendix B.

use crate::moves::RbpMove;
use pebble_dag::{BitSet, Dag, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of an RBP game.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RbpConfig {
    /// Fast-memory capacity `r` (maximum number of red pebbles on the DAG).
    pub r: usize,
    /// Allow the sliding compute move (Appendix B.2).
    pub allow_sliding: bool,
    /// Drop the one-shot restriction, allowing nodes to be recomputed
    /// (Appendix B.1).
    pub allow_recompute: bool,
    /// Forbid the delete move; red pebbles can only disappear by being
    /// replaced when saving (Appendix B.4).
    pub no_delete: bool,
}

impl RbpConfig {
    /// The standard one-shot RBP with cache size `r`.
    pub fn new(r: usize) -> Self {
        RbpConfig {
            r,
            allow_sliding: false,
            allow_recompute: false,
            no_delete: false,
        }
    }

    /// Enable the sliding-pebble variant.
    pub fn with_sliding(mut self) -> Self {
        self.allow_sliding = true;
        self
    }

    /// Enable re-computation (drop the one-shot restriction).
    pub fn with_recompute(mut self) -> Self {
        self.allow_recompute = true;
        self
    }

    /// Enable the no-deletion variant.
    pub fn with_no_delete(mut self) -> Self {
        self.no_delete = true;
        self
    }
}

/// Reasons a move can be rejected by the RBP simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RbpError {
    /// Load requires a blue pebble on the node.
    LoadWithoutBlue(NodeId),
    /// Save requires a red pebble on the node.
    SaveWithoutRed(NodeId),
    /// Compute applied to a source node.
    ComputeSource(NodeId),
    /// Compute requires red pebbles on every in-neighbour.
    ComputeMissingInput(NodeId, NodeId),
    /// One-shot violation: the node was already computed.
    AlreadyComputed(NodeId),
    /// Delete requires a red pebble on the node.
    DeleteWithoutRed(NodeId),
    /// Delete is forbidden in the no-deletion variant.
    DeleteForbidden(NodeId),
    /// Sliding moves are not enabled in this configuration.
    SlidingNotAllowed(NodeId),
    /// The `from` node of a slide must be an in-neighbour of the target.
    SlideFromNotPredecessor {
        /// The node being computed by the slide.
        node: NodeId,
        /// The claimed in-neighbour the pebble would slide from.
        from: NodeId,
    },
    /// The move would exceed the fast-memory capacity `r`.
    CapacityExceeded {
        /// The configured fast-memory capacity that would be exceeded.
        r: usize,
    },
}

impl fmt::Display for RbpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbpError::LoadWithoutBlue(v) => write!(f, "load {v}: node has no blue pebble"),
            RbpError::SaveWithoutRed(v) => write!(f, "save {v}: node has no red pebble"),
            RbpError::ComputeSource(v) => write!(f, "compute {v}: node is a source"),
            RbpError::ComputeMissingInput(v, u) => {
                write!(f, "compute {v}: in-neighbour {u} has no red pebble")
            }
            RbpError::AlreadyComputed(v) => write!(f, "compute {v}: already computed (one-shot)"),
            RbpError::DeleteWithoutRed(v) => write!(f, "delete {v}: node has no red pebble"),
            RbpError::DeleteForbidden(v) => write!(f, "delete {v}: deletion disabled"),
            RbpError::SlidingNotAllowed(v) => write!(f, "slide onto {v}: sliding not enabled"),
            RbpError::SlideFromNotPredecessor { node, from } => {
                write!(f, "slide {from}->{node}: {from} is not an in-neighbour")
            }
            RbpError::CapacityExceeded { r } => write!(f, "move exceeds capacity r={r}"),
        }
    }
}

impl std::error::Error for RbpError {}

/// A running RBP game: the DAG, the configuration and the current pebble
/// placement.
#[derive(Debug, Clone)]
pub struct RbpGame<'a> {
    dag: &'a Dag,
    config: RbpConfig,
    red: BitSet,
    blue: BitSet,
    computed: BitSet,
    io_cost: usize,
    compute_steps: usize,
}

impl<'a> RbpGame<'a> {
    /// Start a game in the initial state: blue pebbles on all sources, no red
    /// pebbles, nothing computed.
    pub fn new(dag: &'a Dag, config: RbpConfig) -> Self {
        let mut blue = dag.node_set();
        for v in dag.nodes() {
            if dag.is_source(v) {
                blue.insert(v.index());
            }
        }
        RbpGame {
            dag,
            config,
            red: dag.node_set(),
            blue,
            computed: dag.node_set(),
            io_cost: 0,
            compute_steps: 0,
        }
    }

    /// The underlying DAG.
    pub fn dag(&self) -> &Dag {
        self.dag
    }

    /// The configuration of this game.
    pub fn config(&self) -> RbpConfig {
        self.config
    }

    /// Total I/O cost (loads + saves) so far.
    pub fn io_cost(&self) -> usize {
        self.io_cost
    }

    /// Number of compute steps (including slides) executed so far.
    pub fn compute_steps(&self) -> usize {
        self.compute_steps
    }

    /// Number of red pebbles currently on the DAG.
    pub fn red_count(&self) -> usize {
        self.red.count()
    }

    /// Returns `true` if `v` currently holds a red pebble.
    pub fn has_red(&self, v: NodeId) -> bool {
        self.red.contains(v.index())
    }

    /// Returns `true` if `v` currently holds a blue pebble.
    pub fn has_blue(&self, v: NodeId) -> bool {
        self.blue.contains(v.index())
    }

    /// Returns `true` if `v` has been computed at least once.
    pub fn is_computed(&self, v: NodeId) -> bool {
        self.computed.contains(v.index())
    }

    /// The current red-pebble set.
    pub fn red_set(&self) -> &BitSet {
        &self.red
    }

    /// The current blue-pebble set.
    pub fn blue_set(&self) -> &BitSet {
        &self.blue
    }

    /// The current configuration in the canonical packed encoding
    /// `[red | blue | computed]` of [`crate::packed`] — identical to the
    /// encoding the exact solver uses, so equal configurations produce equal
    /// word sequences (usable as dedup keys by heuristic searches).
    pub fn packed_words(&self) -> Vec<u64> {
        let w = crate::packed::plane_words(self.dag.node_count());
        let mut words = vec![0u64; 3 * w];
        for i in 0..self.dag.node_count() {
            if self.red.contains(i) {
                crate::packed::set(&mut words[..w], i);
            }
            if self.blue.contains(i) {
                crate::packed::set(&mut words[w..2 * w], i);
            }
            if self.computed.contains(i) {
                crate::packed::set(&mut words[2 * w..], i);
            }
        }
        words
    }

    /// Returns `true` in the terminal state: every sink holds a blue pebble.
    pub fn is_terminal(&self) -> bool {
        self.dag
            .sinks()
            .into_iter()
            .all(|s| self.blue.contains(s.index()))
    }

    fn check_capacity_after_adding(&self, extra: usize) -> Result<(), RbpError> {
        if self.red.count() + extra > self.config.r {
            Err(RbpError::CapacityExceeded { r: self.config.r })
        } else {
            Ok(())
        }
    }

    /// Apply one move, validating it against the transition rules. On error
    /// the state is left unchanged.
    pub fn apply(&mut self, mv: RbpMove) -> Result<(), RbpError> {
        match mv {
            RbpMove::Load(v) => {
                if !self.blue.contains(v.index()) {
                    return Err(RbpError::LoadWithoutBlue(v));
                }
                if !self.red.contains(v.index()) {
                    self.check_capacity_after_adding(1)?;
                    self.red.insert(v.index());
                }
                self.io_cost += 1;
                Ok(())
            }
            RbpMove::Save(v) => {
                if !self.red.contains(v.index()) {
                    return Err(RbpError::SaveWithoutRed(v));
                }
                self.blue.insert(v.index());
                self.io_cost += 1;
                Ok(())
            }
            RbpMove::Compute(v) => {
                self.check_compute_preconditions(v)?;
                if !self.red.contains(v.index()) {
                    self.check_capacity_after_adding(1)?;
                    self.red.insert(v.index());
                }
                self.computed.insert(v.index());
                self.compute_steps += 1;
                Ok(())
            }
            RbpMove::ComputeSlide { node, from } => {
                if !self.config.allow_sliding {
                    return Err(RbpError::SlidingNotAllowed(node));
                }
                if !self.dag.has_edge(from, node) {
                    return Err(RbpError::SlideFromNotPredecessor { node, from });
                }
                self.check_compute_preconditions(node)?;
                // `from` holds a red pebble (checked as an in-neighbour); move it.
                self.red.remove(from.index());
                self.red.insert(node.index());
                self.computed.insert(node.index());
                self.compute_steps += 1;
                Ok(())
            }
            RbpMove::Delete(v) => {
                if self.config.no_delete {
                    return Err(RbpError::DeleteForbidden(v));
                }
                if !self.red.contains(v.index()) {
                    return Err(RbpError::DeleteWithoutRed(v));
                }
                self.red.remove(v.index());
                Ok(())
            }
        }
    }

    fn check_compute_preconditions(&self, v: NodeId) -> Result<(), RbpError> {
        if self.dag.is_source(v) {
            return Err(RbpError::ComputeSource(v));
        }
        if !self.config.allow_recompute && self.computed.contains(v.index()) {
            return Err(RbpError::AlreadyComputed(v));
        }
        for &(u, _) in self.dag.in_edges(v) {
            if !self.red.contains(u.index()) {
                return Err(RbpError::ComputeMissingInput(v, u));
            }
        }
        Ok(())
    }

    /// Apply a sequence of moves; returns the total I/O cost on success, or
    /// the index of the offending move and the error.
    pub fn run<I: IntoIterator<Item = RbpMove>>(
        &mut self,
        moves: I,
    ) -> Result<usize, (usize, RbpError)> {
        for (i, mv) in moves.into_iter().enumerate() {
            self.apply(mv).map_err(|e| (i, e))?;
        }
        Ok(self.io_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::DagBuilder;

    /// a -> b -> c chain.
    fn chain3() -> Dag {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1]);
        b.add_edge(n[1], n[2]);
        b.build().unwrap()
    }

    /// a, b -> c (c needs both).
    fn join() -> Dag {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[2]);
        b.build().unwrap()
    }

    #[test]
    fn initial_state_has_blue_sources_only() {
        let g = chain3();
        let game = RbpGame::new(&g, RbpConfig::new(2));
        assert!(game.has_blue(NodeId(0)));
        assert!(!game.has_blue(NodeId(1)));
        assert!(!game.has_red(NodeId(0)));
        assert_eq!(game.red_count(), 0);
        assert_eq!(game.io_cost(), 0);
        assert!(!game.is_terminal());
    }

    #[test]
    fn full_pebbling_of_chain() {
        let g = chain3();
        let mut game = RbpGame::new(&g, RbpConfig::new(2));
        let cost = game
            .run([
                RbpMove::Load(NodeId(0)),
                RbpMove::Compute(NodeId(1)),
                RbpMove::Delete(NodeId(0)),
                RbpMove::Compute(NodeId(2)),
                RbpMove::Delete(NodeId(1)),
                RbpMove::Save(NodeId(2)),
            ])
            .unwrap();
        assert_eq!(cost, 2);
        assert!(game.is_terminal());
        assert_eq!(game.compute_steps(), 2);
    }

    #[test]
    fn compute_requires_all_inputs_red() {
        let g = join();
        let mut game = RbpGame::new(&g, RbpConfig::new(3));
        game.apply(RbpMove::Load(NodeId(0))).unwrap();
        assert_eq!(
            game.apply(RbpMove::Compute(NodeId(2))),
            Err(RbpError::ComputeMissingInput(NodeId(2), NodeId(1)))
        );
        game.apply(RbpMove::Load(NodeId(1))).unwrap();
        game.apply(RbpMove::Compute(NodeId(2))).unwrap();
        game.apply(RbpMove::Save(NodeId(2))).unwrap();
        assert!(game.is_terminal());
        assert_eq!(game.io_cost(), 3);
    }

    #[test]
    fn capacity_is_enforced() {
        let g = join();
        let mut game = RbpGame::new(&g, RbpConfig::new(2));
        game.apply(RbpMove::Load(NodeId(0))).unwrap();
        game.apply(RbpMove::Load(NodeId(1))).unwrap();
        // Computing node 2 would need a third red pebble.
        assert_eq!(
            game.apply(RbpMove::Compute(NodeId(2))),
            Err(RbpError::CapacityExceeded { r: 2 })
        );
    }

    #[test]
    fn one_shot_restriction() {
        let g = chain3();
        let mut game = RbpGame::new(&g, RbpConfig::new(3));
        game.apply(RbpMove::Load(NodeId(0))).unwrap();
        game.apply(RbpMove::Compute(NodeId(1))).unwrap();
        assert_eq!(
            game.apply(RbpMove::Compute(NodeId(1))),
            Err(RbpError::AlreadyComputed(NodeId(1)))
        );
        // With recompute allowed the same move is legal (after deleting the red
        // pebble it can be recreated for free).
        let mut game = RbpGame::new(&g, RbpConfig::new(3).with_recompute());
        game.apply(RbpMove::Load(NodeId(0))).unwrap();
        game.apply(RbpMove::Compute(NodeId(1))).unwrap();
        game.apply(RbpMove::Delete(NodeId(1))).unwrap();
        game.apply(RbpMove::Compute(NodeId(1))).unwrap();
        assert!(game.has_red(NodeId(1)));
    }

    #[test]
    fn cannot_compute_source_or_load_without_blue() {
        let g = chain3();
        let mut game = RbpGame::new(&g, RbpConfig::new(3));
        assert_eq!(
            game.apply(RbpMove::Compute(NodeId(0))),
            Err(RbpError::ComputeSource(NodeId(0)))
        );
        assert_eq!(
            game.apply(RbpMove::Load(NodeId(1))),
            Err(RbpError::LoadWithoutBlue(NodeId(1)))
        );
        assert_eq!(
            game.apply(RbpMove::Save(NodeId(0))),
            Err(RbpError::SaveWithoutRed(NodeId(0)))
        );
        assert_eq!(
            game.apply(RbpMove::Delete(NodeId(0))),
            Err(RbpError::DeleteWithoutRed(NodeId(0)))
        );
    }

    #[test]
    fn sliding_moves() {
        let g = chain3();
        // Without the flag a slide is rejected.
        let mut game = RbpGame::new(&g, RbpConfig::new(2));
        game.apply(RbpMove::Load(NodeId(0))).unwrap();
        assert_eq!(
            game.apply(RbpMove::ComputeSlide {
                node: NodeId(1),
                from: NodeId(0)
            }),
            Err(RbpError::SlidingNotAllowed(NodeId(1)))
        );
        // With the flag, the pebble moves and capacity stays at 1.
        let mut game = RbpGame::new(&g, RbpConfig::new(1).with_sliding());
        game.apply(RbpMove::Load(NodeId(0))).unwrap();
        game.apply(RbpMove::ComputeSlide {
            node: NodeId(1),
            from: NodeId(0),
        })
        .unwrap();
        assert!(!game.has_red(NodeId(0)));
        assert!(game.has_red(NodeId(1)));
        assert_eq!(game.red_count(), 1);
        game.apply(RbpMove::ComputeSlide {
            node: NodeId(2),
            from: NodeId(1),
        })
        .unwrap();
        game.apply(RbpMove::Save(NodeId(2))).unwrap();
        assert!(game.is_terminal());
        assert_eq!(game.io_cost(), 2);
    }

    #[test]
    fn slide_from_must_be_predecessor() {
        let g = join();
        let mut game = RbpGame::new(&g, RbpConfig::new(3).with_sliding());
        game.apply(RbpMove::Load(NodeId(0))).unwrap();
        game.apply(RbpMove::Load(NodeId(1))).unwrap();
        assert_eq!(
            game.apply(RbpMove::ComputeSlide {
                node: NodeId(1),
                from: NodeId(0)
            }),
            Err(RbpError::SlideFromNotPredecessor {
                node: NodeId(1),
                from: NodeId(0)
            })
        );
    }

    #[test]
    fn no_delete_variant_rejects_delete() {
        let g = chain3();
        let mut game = RbpGame::new(&g, RbpConfig::new(3).with_no_delete());
        game.apply(RbpMove::Load(NodeId(0))).unwrap();
        assert_eq!(
            game.apply(RbpMove::Delete(NodeId(0))),
            Err(RbpError::DeleteForbidden(NodeId(0)))
        );
    }

    #[test]
    fn run_reports_offending_move_index() {
        let g = chain3();
        let mut game = RbpGame::new(&g, RbpConfig::new(2));
        let err = game
            .run([RbpMove::Load(NodeId(0)), RbpMove::Compute(NodeId(2))])
            .unwrap_err();
        assert_eq!(err.0, 1);
        assert_eq!(err.1, RbpError::ComputeMissingInput(NodeId(2), NodeId(1)));
    }

    #[test]
    fn packed_words_mirror_the_documented_plane_layout() {
        // The contract heuristic searches rely on: `[red | blue | computed]`
        // planes of `plane_words(n)` words each, every bit agreeing with the
        // game accessors — so equal configurations encode identically.
        let g = chain3();
        let mut game = RbpGame::new(&g, RbpConfig::new(2));
        game.run([
            RbpMove::Load(NodeId(0)),
            RbpMove::Compute(NodeId(1)),
            RbpMove::Delete(NodeId(0)),
        ])
        .unwrap();
        let words = game.packed_words();
        let w = crate::packed::plane_words(g.node_count());
        assert_eq!(words.len(), 3 * w);
        for v in g.nodes() {
            let i = v.index();
            assert_eq!(crate::packed::get(&words[..w], i), game.has_red(v));
            assert_eq!(crate::packed::get(&words[w..2 * w], i), game.has_blue(v));
            assert_eq!(crate::packed::get(&words[2 * w..], i), game.is_computed(v));
        }
        // Equal configurations produce equal words.
        let mut twin = RbpGame::new(&g, RbpConfig::new(2));
        twin.run([
            RbpMove::Load(NodeId(0)),
            RbpMove::Compute(NodeId(1)),
            RbpMove::Delete(NodeId(0)),
        ])
        .unwrap();
        assert_eq!(twin.packed_words(), words);
    }

    #[test]
    fn error_display_is_informative() {
        let e = RbpError::CapacityExceeded { r: 4 };
        assert!(e.to_string().contains("r=4"));
        let e = RbpError::ComputeMissingInput(NodeId(2), NodeId(1));
        assert!(e.to_string().contains("in-neighbour"));
    }
}

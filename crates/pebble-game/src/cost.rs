//! Cost models, including the compute-cost variant of Appendix B.3.
//!
//! The standard cost of a pebbling is the number of I/O operations (loads +
//! saves); compute and delete steps are free. The compute-cost variant
//! assigns a small constant `ε > 0` to each compute step. For PRBP the paper
//! discusses two ways of translating node-based compute costs to edge-based
//! partial compute steps: a flat `ε` per partial compute (total `ε·|E|`), or
//! `ε / deg_in(v)` per partial compute into `v` (total `ε·n`, directly
//! comparable with RBP).

use crate::trace::{PrbpTrace, RbpTrace};
use pebble_dag::Dag;
use serde::{Deserialize, Serialize};

/// A cost model assigning weights to I/O and compute steps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of one load or save operation (1.0 in the standard model).
    pub io_cost: f64,
    /// Cost `ε` of one compute step (0.0 in the standard model).
    pub compute_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            io_cost: 1.0,
            compute_cost: 0.0,
        }
    }
}

impl CostModel {
    /// The standard I/O-only cost model.
    pub fn io_only() -> Self {
        Self::default()
    }

    /// A model with unit I/O cost and compute cost `epsilon` (Appendix B.3).
    pub fn with_compute_cost(epsilon: f64) -> Self {
        CostModel {
            io_cost: 1.0,
            compute_cost: epsilon,
        }
    }

    /// Total cost of an RBP trace: `io_cost` per load/save plus
    /// `compute_cost` per compute step (including slides).
    pub fn rbp_cost(&self, trace: &RbpTrace) -> f64 {
        self.io_cost * trace.io_cost() as f64 + self.compute_cost * trace.compute_steps() as f64
    }

    /// Total cost of a PRBP trace with a *flat* `ε` per partial compute step,
    /// which sums to `ε·|E|` over a one-shot pebbling.
    pub fn prbp_cost_flat(&self, trace: &PrbpTrace) -> f64 {
        self.io_cost * trace.io_cost() as f64 + self.compute_cost * trace.compute_steps() as f64
    }

    /// Total cost of a PRBP trace where a partial compute into node `v` costs
    /// `ε / deg_in(v)`, so a fully aggregated node costs `ε` in total — the
    /// in-degree-scaled translation discussed in Appendix B.3.
    pub fn prbp_cost_indegree_scaled(&self, dag: &Dag, trace: &PrbpTrace) -> f64 {
        let mut total = 0.0;
        for mv in &trace.moves {
            match mv {
                crate::moves::PrbpMove::Load(_) | crate::moves::PrbpMove::Save(_) => {
                    total += self.io_cost;
                }
                crate::moves::PrbpMove::PartialCompute { to, .. } => {
                    let deg = dag.in_degree(*to).max(1) as f64;
                    total += self.compute_cost / deg;
                }
                _ => {}
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moves::{PrbpMove, RbpMove};
    use pebble_dag::{DagBuilder, NodeId};

    fn join() -> Dag {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[2]);
        b.build().unwrap()
    }

    #[test]
    fn default_is_io_only() {
        let m = CostModel::default();
        assert_eq!(m.io_cost, 1.0);
        assert_eq!(m.compute_cost, 0.0);
        assert_eq!(CostModel::io_only(), m);
    }

    #[test]
    fn rbp_cost_with_epsilon() {
        let trace = RbpTrace::from_moves(vec![
            RbpMove::Load(NodeId(0)),
            RbpMove::Load(NodeId(1)),
            RbpMove::Compute(NodeId(2)),
            RbpMove::Save(NodeId(2)),
        ]);
        let m = CostModel::with_compute_cost(0.25);
        assert!((m.rbp_cost(&trace) - 3.25).abs() < 1e-12);
        assert!((CostModel::io_only().rbp_cost(&trace) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn prbp_flat_vs_indegree_scaled() {
        let g = join();
        let trace = PrbpTrace::from_moves(vec![
            PrbpMove::Load(NodeId(0)),
            PrbpMove::PartialCompute {
                from: NodeId(0),
                to: NodeId(2),
            },
            PrbpMove::Delete(NodeId(0)),
            PrbpMove::Load(NodeId(1)),
            PrbpMove::PartialCompute {
                from: NodeId(1),
                to: NodeId(2),
            },
            PrbpMove::Save(NodeId(2)),
        ]);
        let m = CostModel::with_compute_cost(0.5);
        // Flat: 3 I/O + 2 * 0.5.
        assert!((m.prbp_cost_flat(&trace) - 4.0).abs() < 1e-12);
        // In-degree scaled: node 2 has in-degree 2, so each step costs 0.25,
        // and the fully aggregated node costs 0.5 = ε in total, matching RBP.
        assert!((m.prbp_cost_indegree_scaled(&g, &trace) - 3.5).abs() < 1e-12);
    }
}

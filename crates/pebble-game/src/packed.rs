//! Packed bit-plane state encoding, shared by the exact solvers and the
//! heuristic schedulers.
//!
//! A pebbling configuration is a fixed number of `u64` words: bit planes over
//! the nodes (and, for PRBP, the edges) of the DAG. Equal configurations
//! encode to identical word sequences, so a single hash-map lookup on the
//! word slice detects duplicates — the property both the exact A* searches
//! (`crate::exact`) and the beam scheduler (`pebble-sched`) build their
//! transposition/dedup tables on.
//!
//! The canonical layouts, produced by [`crate::RbpGame::packed_words`] and
//! [`crate::PrbpGame::packed_words`] and consumed by the solvers:
//!
//! * **RBP** — `[red | blue | computed]`, three node planes.
//! * **PRBP** — `[red | blue | marked]`, two node planes (together encoding
//!   the four [`crate::PebbleState`]s: red ⇒ light or dark, blue ⇒ slow-memory
//!   copy) followed by one edge plane.

/// Words per bit plane for `n` nodes (or edges). The `.max(1)` keeps
/// zero-element planes addressable; every writer and reader of a packed
/// layout must agree on this width, so this is the only place it is defined.
#[inline]
pub fn plane_words(n: usize) -> usize {
    n.div_ceil(64).max(1)
}

/// Test bit `i` of a packed word slice.
#[inline]
pub fn get(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1u64 << (i % 64)) != 0
}

/// Set bit `i` of a packed word slice.
#[inline]
pub fn set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1u64 << (i % 64);
}

/// Clear bit `i` of a packed word slice.
#[inline]
pub fn clear(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1u64 << (i % 64));
}

/// Number of set bits in a packed word slice.
#[inline]
pub fn popcount(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_words_rounds_up_and_floors_at_one() {
        assert_eq!(plane_words(0), 1);
        assert_eq!(plane_words(1), 1);
        assert_eq!(plane_words(64), 1);
        assert_eq!(plane_words(65), 2);
        assert_eq!(plane_words(640), 10);
    }

    #[test]
    fn bit_ops_roundtrip() {
        let mut w = vec![0u64; 2];
        assert!(!get(&w, 70));
        set(&mut w, 70);
        set(&mut w, 0);
        assert!(get(&w, 70) && get(&w, 0));
        assert_eq!(popcount(&w), 2);
        clear(&mut w, 70);
        assert!(!get(&w, 70));
        assert_eq!(popcount(&w), 1);
    }
}

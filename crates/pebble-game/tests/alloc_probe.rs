//! Allocation-count regression probe for the interned state store.
//!
//! The engine's transposition table interns each distinct packed state as a
//! single shared `Arc<[u64]>` allocation; expansion writes candidate
//! successors into a reused scratch buffer and only allocates when a state
//! is genuinely new. The invariant this buys: the allocation count of a
//! solve scales with *distinct* states, not with *generated* ones (which
//! outnumber distinct by the branching factor). A regression to
//! per-candidate cloning multiplies allocations by that factor and trips
//! the bound below.
//!
//! The probe is a counting `#[global_allocator]` around a fixed instance —
//! kept in its own integration-test binary so no other test's allocations
//! pollute the count.

use pebble_dag::generators::fig1_full;
use pebble_game::exact::{optimal_prbp_cost_with, LoadCountHeuristic, SearchConfig};
use pebble_game::prbp::PrbpConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn solve_allocations_scale_with_distinct_states_not_generated() {
    let f = fig1_full();
    let config = PrbpConfig::new(2);
    let search = SearchConfig::default();

    // Warm-up run: pays for lazy one-time initialisation (thread-locals,
    // the DAG's own caches) so the measured run is the steady state.
    let warm = optimal_prbp_cost_with(&f.dag, config, search, &LoadCountHeuristic)
        .expect("fig1 solves at r = 2");

    let before = ALLOCATIONS.load(Relaxed);
    let solved = optimal_prbp_cost_with(&f.dag, config, search, &LoadCountHeuristic)
        .expect("fig1 solves at r = 2");
    let during = ALLOCATIONS.load(Relaxed) - before;

    assert_eq!(solved.cost, warm.cost, "repeat solve must be deterministic");
    let distinct = solved.stats.distinct;
    let generated = solved.stats.generated;
    // The probe only bites if duplication is real on this instance —
    // otherwise distinct ≈ generated and the bound proves nothing.
    assert!(
        generated >= 2 * distinct,
        "instance too easy to probe: generated {generated} vs distinct {distinct}"
    );
    // One interned Arc per distinct state, plus amortised container growth
    // and constant scratch. Per-candidate cloning would cost at least one
    // allocation per generated state and blow through this.
    let budget = 2 * distinct + 1024;
    assert!(
        during <= budget,
        "solve allocated {during} times for {distinct} distinct states \
         (budget {budget}); per-state single-allocation interning regressed"
    );
}

//! Pins the Prometheus text exposition format byte-for-byte against a golden
//! file: `# HELP`/`# TYPE` headers, sorted families and label sets, label
//! escaping, and histogram `_bucket`/`_sum`/`_count` triplets with
//! cumulative power-of-two `le` edges. If this test fails after an
//! intentional format change, update `tests/golden/metrics.prom` and the
//! docs/API.md example together.

use pebble_obs::metrics::Registry;

#[test]
fn exposition_format_matches_golden_file() {
    let r = Registry::new();

    // A labelled counter family with two series, registered out of order to
    // prove series sort by label set.
    let hits = r.counter(
        "cache_outcomes_total",
        "Cache lookups by outcome",
        &[("outcome", "miss_absent")],
    );
    hits.add(3);
    r.counter(
        "cache_outcomes_total",
        "Cache lookups by outcome",
        &[("outcome", "hit")],
    )
    .add(11);

    // A gauge that has gone negative.
    let depth = r.gauge("pool_queue_depth", "Jobs waiting in the pool", &[]);
    depth.set(-2);

    // A sharded counter renders as a plain counter with the folded total.
    let expanded = r.sharded_counter("engine_expanded_total", "States expanded", &[]);
    expanded.add(0, 40);
    expanded.add(3, 2);

    // A histogram: observations at 1, 3, 3, 900 land in buckets le=1 (one)
    // le=4 (two) and le=1024 (one); buckets in between render as cumulative
    // repeats and everything above the highest non-empty bucket collapses
    // into +Inf.
    let lat = r.histogram(
        "request_us",
        "Request latency, microseconds",
        &[("route", "schedule")],
    );
    for v in [1, 3, 3, 900] {
        lat.observe(v);
    }

    // Label-value escaping: backslash, quote, newline.
    r.counter(
        "weird_labels_total",
        "Label escaping fixture",
        &[("path", "a\\b\"c\nd")],
    )
    .inc();

    let got = r.render_prometheus();
    let want = include_str!("golden/metrics.prom");
    assert_eq!(
        got, want,
        "Prometheus exposition drifted from tests/golden/metrics.prom;\n\
         left = rendered, right = golden"
    );
}

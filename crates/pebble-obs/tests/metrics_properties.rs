//! Property tests for the metrics substrate: the invariants the engine's
//! instrumentation leans on. A sharded counter's snapshot total must equal
//! the sum of its per-worker shards regardless of which workers wrote what,
//! and a histogram's rendered `_count` must equal the number of
//! observations with `_sum` equal to their sum.

use pebble_obs::metrics::{Registry, SHARDS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Snapshot total == sum of per-worker shards, for any write pattern
    /// (including worker indices beyond SHARDS, which wrap).
    #[test]
    fn sharded_total_is_sum_of_shards(
        writes in proptest::collection::vec((0usize..64, 0u64..1_000_000), 0..200)
    ) {
        let r = Registry::new();
        let c = r.sharded_counter("expanded_total", "", &[]);
        let mut expected_shards = [0u64; SHARDS];
        for &(worker, n) in &writes {
            c.add(worker, n);
            expected_shards[worker % SHARDS] += n;
        }
        for (i, &want) in expected_shards.iter().enumerate() {
            prop_assert_eq!(c.shard(i), want);
        }
        let expected_total: u64 = expected_shards.iter().sum();
        prop_assert_eq!(c.total(), expected_total);
        // And the rendered exposition carries the folded total.
        let text = r.render_prometheus();
        prop_assert!(
            text.contains(&format!("expanded_total {expected_total}")),
            "rendered: {}", text
        );
    }

    /// Histogram `_count`/`_sum` always match the raw observations, and the
    /// `+Inf` bucket equals `_count`.
    #[test]
    fn histogram_count_and_sum_match_observations(
        samples in proptest::collection::vec(0u64..1_000_000_000, 1..100)
    ) {
        let r = Registry::new();
        let h = r.histogram("lat_us", "", &[]);
        for &s in &samples {
            h.observe(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let expected_sum: u64 = samples.iter().sum();
        prop_assert_eq!(h.sum(), expected_sum);
        let text = r.render_prometheus();
        prop_assert!(
            text.contains(&format!("lat_us_bucket{{le=\"+Inf\"}} {}", samples.len())),
            "rendered: {}", text
        );
        prop_assert!(text.contains(&format!("lat_us_sum {expected_sum}")), "rendered: {}", text);
        prop_assert!(text.contains(&format!("lat_us_count {}", samples.len())), "rendered: {}", text);
    }
}

/// Concurrent writers on distinct shards never lose increments: the fold
/// after join sees every write.
#[test]
fn concurrent_shard_writes_all_land() {
    let r = Registry::new();
    let c = r.sharded_counter("par_total", "", &[]);
    let per_worker = 10_000u64;
    std::thread::scope(|scope| {
        for w in 0..8 {
            let c = c.clone();
            scope.spawn(move || {
                for _ in 0..per_worker {
                    c.add(w, 1);
                }
            });
        }
    });
    assert_eq!(c.total(), 8 * per_worker);
}

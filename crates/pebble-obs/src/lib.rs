//! Observability substrate for the PRBP stack: metrics and structured
//! traces, with zero dependencies beyond `std`.
//!
//! The crate has three modules:
//!
//! - [`metrics`] — a process-global [`metrics::Registry`] of relaxed-atomic
//!   counters, gauges and log-bucketed histograms, plus per-worker
//!   [`metrics::ShardedCounter`]s for the engine's expansion loop. Rendered
//!   on demand in the Prometheus text exposition format (`GET /metrics`).
//! - [`trace`] — typed, monotonic-clock-stamped events
//!   ([`trace::TraceEvent`]) flowing through a process-global
//!   [`trace::TraceSink`] (JSONL file or discard). When no sink is
//!   installed the emit path is one relaxed atomic load, so instrumentation
//!   stays compiled into hot loops.
//! - [`analyze`] — the offline half: parse a JSONL stream back into events
//!   and summarize phase timings plus the anytime convergence curve
//!   (`prbp trace <file.jsonl>`).
//!
//! The overhead contract instrumented crates rely on: metric updates are
//! single relaxed RMWs on pre-registered handles; trace emission is gated on
//! [`trace::enabled`]; per-worker counters live on distinct cache lines and
//! fold only at snapshot time. Measured end-to-end on the solver benchmark
//! corpus, total overhead stays under 3%.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod metrics;
pub mod trace;

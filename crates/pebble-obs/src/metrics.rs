//! A process-global registry of atomic counters, gauges and log-bucketed
//! histograms, rendered in the Prometheus text exposition format.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost.** Updating a metric is one relaxed atomic RMW on a
//!    handle the caller obtained once — no name lookup, no lock, no
//!    allocation. The engine's expansion loop additionally gets
//!    [`ShardedCounter`]: per-worker cache-padded shards written with
//!    relaxed ordering and folded only when a snapshot is rendered, so
//!    workers never contend on one cache line.
//! 2. **Misuse fails loudly.** Registering the same metric name twice with
//!    different types panics immediately (a silent type confusion would
//!    corrupt every dashboard built on the name); metric and label names are
//!    validated against the Prometheus grammar at registration time.
//! 3. **Deterministic exposition.** Families and series render in sorted
//!    order and label values are escaped per the exposition-format rules,
//!    so the output is byte-stable for golden tests.
//!
//! Registration is the slow path (a mutex-guarded map insert); it is meant
//! to happen once per metric per process, with the returned handle cached in
//! a `OnceLock` by the instrumented subsystem.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Shards per [`ShardedCounter`]. Callers index with `worker % SHARDS`, so
/// any worker count works; 16 covers the engine's typical parallelism
/// without false sharing (each shard is cache-line padded).
pub const SHARDS: usize = 16;

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value. Cloning shares the underlying cell.
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// One shard on its own cache line, so concurrent workers incrementing
/// different shards never bounce a line between cores.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// A counter split into [`SHARDS`] per-worker cells, folded on snapshot.
///
/// The engine's workers each own `worker % SHARDS` and add with relaxed
/// ordering; [`ShardedCounter::total`] sums the shards. The registry renders
/// the folded total as a plain Prometheus counter.
#[derive(Clone, Debug)]
pub struct ShardedCounter {
    shards: Arc<[PaddedCell; SHARDS]>,
}

impl ShardedCounter {
    fn new() -> Self {
        ShardedCounter {
            shards: Arc::new(std::array::from_fn(|_| PaddedCell::default())),
        }
    }

    /// Add `n` to the shard owned by `worker` (taken modulo [`SHARDS`]).
    pub fn add(&self, worker: usize, n: u64) {
        self.shards[worker % SHARDS]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// The value of one shard (index taken modulo [`SHARDS`]).
    pub fn shard(&self, worker: usize) -> u64 {
        self.shards[worker % SHARDS].0.load(Ordering::Relaxed)
    }

    /// Fold every shard into the counter's total.
    pub fn total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Histogram buckets: `le = 2^i` for `i in 0..=63`, plus `+Inf`. Bucket `i`
/// counts observations with `value <= 2^i`, so any `u64` lands in a bucket
/// with at most a 2x relative error on the upper edge.
const HIST_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramCore {
    /// Non-cumulative per-bucket counts (made cumulative at render time).
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

/// A log-bucketed histogram of `u64` samples (latencies in microseconds,
/// sizes in nodes/bytes). Cloning shares the underlying cells.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

/// Smallest bucket index `i` with `value <= 2^i` (64 = the `+Inf` bucket).
fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        64 - (value - 1).leading_zeros() as usize
    }
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            core: Arc::new(HistogramCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Record one sample.
    pub fn observe(&self, value: u64) {
        self.core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }
}

/// The concrete type a name was registered with. Used only for the loud
/// double-registration check; [`MetricType::exposition_kind`] is what lands
/// in the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricType {
    /// Plain [`Counter`].
    Counter,
    /// [`ShardedCounter`] (rendered as a counter).
    ShardedCounter,
    /// [`Gauge`].
    Gauge,
    /// [`Histogram`].
    Histogram,
}

impl MetricType {
    /// The Prometheus `# TYPE` keyword for this metric type.
    pub fn exposition_kind(self) -> &'static str {
        match self {
            MetricType::Counter | MetricType::ShardedCounter => "counter",
            MetricType::Gauge => "gauge",
            MetricType::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Sharded(ShardedCounter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    ty: MetricType,
    help: String,
    /// Label set (sorted) -> handle.
    series: BTreeMap<Vec<(String, String)>, Handle>,
}

/// A named collection of metrics. Most code uses the process-global
/// [`Registry::global`]; tests construct private instances for determinism.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().enumerate().all(|(i, b)| {
            b.is_ascii_alphabetic() || b == b'_' || b == b':' || (i > 0 && b.is_ascii_digit())
        })
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

/// Escape a label value per the exposition format: backslash, double quote
/// and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a `# HELP` text: backslash and newline.
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    format!("{{{}}}", parts.join(","))
}

impl Registry {
    /// An empty registry (tests and tools; production code uses
    /// [`Registry::global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-global registry every instrumented subsystem registers
    /// into and `GET /metrics` renders.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        ty: MetricType,
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        assert!(
            valid_name(name),
            "metric name `{name}` is not a valid Prometheus name"
        );
        for (k, _) in labels {
            assert!(
                valid_name(k) && !k.contains(':'),
                "label name `{k}` on metric `{name}` is not a valid Prometheus label"
            );
            assert!(
                *k != "le",
                "label `le` on metric `{name}` is reserved for histogram buckets"
            );
        }
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            ty,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            family.ty == ty,
            "metric `{name}` registered twice with different types: \
             first as {:?}, now as {ty:?}",
            family.ty
        );
        family
            .series
            .entry(sorted_labels(labels))
            .or_insert_with(make)
            .clone()
    }

    /// Register (or look up) a counter. Panics if `name` already exists with
    /// a different type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, MetricType::Counter, || {
            Handle::Counter(Counter {
                cell: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("type checked by register"),
        }
    }

    /// Register (or look up) a per-worker sharded counter. Panics if `name`
    /// already exists with a different type.
    pub fn sharded_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> ShardedCounter {
        match self.register(name, help, labels, MetricType::ShardedCounter, || {
            Handle::Sharded(ShardedCounter::new())
        }) {
            Handle::Sharded(c) => c,
            _ => unreachable!("type checked by register"),
        }
    }

    /// Register (or look up) a gauge. Panics if `name` already exists with a
    /// different type.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, MetricType::Gauge, || {
            Handle::Gauge(Gauge {
                cell: Arc::new(AtomicI64::new(0)),
            })
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("type checked by register"),
        }
    }

    /// Register (or look up) a log-bucketed histogram. Panics if `name`
    /// already exists with a different type.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, labels, MetricType::Histogram, || {
            Handle::Histogram(Histogram::new())
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("type checked by register"),
        }
    }

    /// Render every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers, sorted families and
    /// series, escaped label values, histogram `_bucket`/`_sum`/`_count`
    /// triplets with cumulative power-of-two `le` buckets.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            if !family.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            }
            let _ = writeln!(out, "# TYPE {name} {}", family.ty.exposition_kind());
            for (labels, handle) in &family.series {
                match handle {
                    Handle::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), c.get());
                    }
                    Handle::Sharded(c) => {
                        let _ =
                            writeln!(out, "{name}{} {}", render_labels(labels, None), c.total());
                    }
                    Handle::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), g.get());
                    }
                    Handle::Histogram(h) => {
                        // Snapshot the non-cumulative counts first so the
                        // cumulative series is internally consistent even
                        // while observations race.
                        let counts: Vec<u64> = h
                            .core
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect();
                        let total: u64 = counts.iter().sum();
                        let highest = counts[..64].iter().rposition(|&c| c > 0);
                        let mut cumulative = 0u64;
                        if let Some(highest) = highest {
                            for (i, &c) in counts.iter().enumerate().take(highest + 1) {
                                cumulative += c;
                                let le = (1u128 << i).to_string();
                                let _ = writeln!(
                                    out,
                                    "{name}_bucket{} {cumulative}",
                                    render_labels(labels, Some(("le", &le)))
                                );
                            }
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {total}",
                            render_labels(labels, Some(("le", "+Inf")))
                        );
                        let _ =
                            writeln!(out, "{name}_sum{} {}", render_labels(labels, None), h.sum());
                        let _ =
                            writeln!(out, "{name}_count{} {total}", render_labels(labels, None));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let r = Registry::new();
        let c = r.counter("c_total", "a counter", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registering the same series returns the same cell.
        assert_eq!(r.counter("c_total", "a counter", &[]).get(), 5);

        let g = r.gauge("g", "a gauge", &[]);
        g.set(7);
        g.sub(10);
        assert_eq!(g.get(), -3);

        let h = r.histogram("h_us", "a histogram", &[]);
        for v in [0, 1, 2, 3, 900] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 906);
    }

    #[test]
    fn bucket_index_is_the_smallest_covering_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), 21);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn sharded_counter_folds_shards() {
        let r = Registry::new();
        let c = r.sharded_counter("s_total", "sharded", &[]);
        c.add(0, 3);
        c.add(1, 4);
        c.add(SHARDS, 5); // wraps to shard 0
        assert_eq!(c.shard(0), 8);
        assert_eq!(c.shard(1), 4);
        assert_eq!(c.total(), 12);
    }

    #[test]
    #[should_panic(expected = "registered twice with different types")]
    fn double_registration_with_a_different_type_panics() {
        let r = Registry::new();
        let _ = r.counter("dup", "first", &[]);
        let _ = r.gauge("dup", "second", &[]);
    }

    #[test]
    #[should_panic(expected = "not a valid Prometheus name")]
    fn invalid_metric_names_panic() {
        let _ = Registry::new().counter("bad name", "", &[]);
    }

    #[test]
    #[should_panic(expected = "reserved for histogram buckets")]
    fn le_label_is_reserved() {
        let _ = Registry::new().histogram("h", "", &[("le", "1")]);
    }

    #[test]
    fn labels_sort_and_escape() {
        let r = Registry::new();
        let c = r.counter("l_total", "", &[("zeta", "z"), ("alpha", "a\"b\\c\nd")]);
        c.inc();
        let text = r.render_prometheus();
        assert!(
            text.contains("l_total{alpha=\"a\\\"b\\\\c\\nd\",zeta=\"z\"} 1"),
            "{text}"
        );
    }
}

//! Offline analysis of JSONL trace streams: parse the events written by
//! [`crate::trace::JsonlSink`] back into [`Stamped`] values and summarize
//! them into a phase-timing breakdown plus the anytime convergence curve
//! (`prbp trace <file.jsonl>` prints the [`std::fmt::Display`] form).
//!
//! The parser is deliberately minimal: it accepts exactly the flat,
//! string/integer-valued objects our own writer produces, which keeps this
//! crate dependency-free. Unknown `"type"` values are skipped (forward
//! compatibility); malformed lines are hard errors with a line number.

use crate::trace::{Stamped, TraceEvent};
use std::collections::BTreeMap;
use std::fmt;

/// Split the body of a flat JSON object into raw `key -> value-token` pairs.
/// Values are either quoted strings (returned unescaped) or bare tokens
/// (numbers). Nested objects/arrays are rejected — the trace writer never
/// produces them.
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, String>, String> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut fields = BTreeMap::new();
    let mut chars = inner.chars().peekable();
    loop {
        // Skip separators/whitespace before a key.
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(fields);
        }
        let key = parse_string(&mut chars)?;
        while matches!(chars.peek(), Some(' ')) {
            chars.next();
        }
        if chars.next() != Some(':') {
            return Err(format!("expected `:` after key `{key}`"));
        }
        while matches!(chars.peek(), Some(' ')) {
            chars.next();
        }
        let value = match chars.peek() {
            Some('"') => parse_string(&mut chars)?,
            Some('{') | Some('[') => return Err("nested values are not supported".to_string()),
            _ => {
                let mut tok = String::new();
                while let Some(&c) = chars.peek() {
                    if c == ',' {
                        break;
                    }
                    tok.push(c);
                    chars.next();
                }
                let tok = tok.trim().to_string();
                if tok.is_empty() {
                    return Err(format!("empty value for key `{key}`"));
                }
                tok
            }
        };
        fields.insert(key, value);
    }
}

/// Consume one quoted JSON string (with escapes) from `chars`.
fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected string".to_string());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code =
                        u32::from_str_radix(&hex, 16).map_err(|_| "bad \\u escape".to_string())?;
                    out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                }
                other => return Err(format!("bad escape `\\{other:?}`")),
            },
            Some(c) => out.push(c),
        }
    }
}

fn field_u64(fields: &BTreeMap<String, String>, key: &str) -> Result<u64, String> {
    fields
        .get(key)
        .ok_or_else(|| format!("missing field `{key}`"))?
        .parse::<u64>()
        .map_err(|_| format!("field `{key}` is not a non-negative integer"))
}

fn field_str(fields: &BTreeMap<String, String>, key: &str) -> Result<String, String> {
    fields
        .get(key)
        .cloned()
        .ok_or_else(|| format!("missing field `{key}`"))
}

/// Parse one JSONL line into a [`Stamped`] event. `Ok(None)` means the line
/// carried an unknown event type (skipped for forward compatibility).
fn parse_line(line: &str) -> Result<Option<Stamped>, String> {
    let fields = parse_flat_object(line)?;
    let t_us = field_u64(&fields, "t_us")?;
    let ty = field_str(&fields, "type")?;
    let event = match ty.as_str() {
        "span_start" => TraceEvent::SpanStart {
            name: field_str(&fields, "name")?,
        },
        "span_end" => TraceEvent::SpanEnd {
            name: field_str(&fields, "name")?,
            dur_us: field_u64(&fields, "dur_us")?,
        },
        "incumbent" => TraceEvent::Incumbent {
            cost: field_u64(&fields, "cost")?,
        },
        "bound" => TraceEvent::Bound {
            value: field_u64(&fields, "value")?,
        },
        "cache_lookup" => TraceEvent::CacheLookup {
            outcome: field_str(&fields, "outcome")?,
        },
        "request" => TraceEvent::Request {
            route: field_str(&fields, "route")?,
            status: field_u64(&fields, "status")? as u16,
            dur_us: field_u64(&fields, "dur_us")?,
        },
        _ => return Ok(None),
    };
    Ok(Some(Stamped { t_us, event }))
}

/// Parse a whole JSONL document. Blank lines are skipped; malformed lines
/// are errors naming the 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Stamped>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(Some(e)) => events.push(e),
            Ok(None) => {}
            Err(err) => return Err(format!("line {}: {err}", i + 1)),
        }
    }
    Ok(events)
}

/// Aggregated timing for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Span name.
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total microseconds across those spans.
    pub total_us: u64,
}

/// One step of the anytime convergence curve: the state of the
/// incumbent/bound pair after an event at `t_us`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceRow {
    /// Event timestamp (microseconds since trace epoch).
    pub t_us: u64,
    /// Best incumbent cost known at this time, if any.
    pub cost: Option<u64>,
    /// Best lower bound known at this time, if any.
    pub bound: Option<u64>,
}

impl ConvergenceRow {
    /// `cost / bound` when both sides are known and the bound is positive.
    pub fn gap(&self) -> Option<f64> {
        match (self.cost, self.bound) {
            (Some(c), Some(b)) if b > 0 => Some(c as f64 / b as f64),
            _ => None,
        }
    }
}

/// Everything `prbp trace` reports about a JSONL stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Total events parsed.
    pub events: usize,
    /// Per-span-name timing rows, sorted by descending total time.
    pub phases: Vec<PhaseRow>,
    /// Incumbent/bound updates in event order.
    pub convergence: Vec<ConvergenceRow>,
    /// Timestamp of the first incumbent, if the search found one.
    pub time_to_first_incumbent_us: Option<u64>,
    /// Timestamp of the last bound improvement, if any bound was reported.
    pub time_to_final_bound_us: Option<u64>,
}

/// Fold a parsed event stream into a [`TraceSummary`].
pub fn summarize(events: &[Stamped]) -> TraceSummary {
    let mut phases: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut convergence = Vec::new();
    let mut cost: Option<u64> = None;
    let mut bound: Option<u64> = None;
    let mut first_incumbent = None;
    let mut final_bound = None;
    for e in events {
        match &e.event {
            TraceEvent::SpanEnd { name, dur_us } => {
                let entry = phases.entry(name.clone()).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += dur_us;
            }
            TraceEvent::Incumbent { cost: c } => {
                if cost.is_none() {
                    first_incumbent = Some(e.t_us);
                }
                cost = Some(cost.map_or(*c, |prev: u64| prev.min(*c)));
                convergence.push(ConvergenceRow {
                    t_us: e.t_us,
                    cost,
                    bound,
                });
            }
            TraceEvent::Bound { value } => {
                bound = Some(bound.map_or(*value, |prev: u64| prev.max(*value)));
                final_bound = Some(e.t_us);
                convergence.push(ConvergenceRow {
                    t_us: e.t_us,
                    cost,
                    bound,
                });
            }
            _ => {}
        }
    }
    let mut phases: Vec<PhaseRow> = phases
        .into_iter()
        .map(|(name, (count, total_us))| PhaseRow {
            name,
            count,
            total_us,
        })
        .collect();
    phases.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    TraceSummary {
        events: events.len(),
        phases,
        convergence,
        time_to_first_incumbent_us: first_incumbent,
        time_to_final_bound_us: final_bound,
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    } else if us >= 1_000 {
        format!("{:.3}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}us")
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "events: {}", self.events)?;
        if !self.phases.is_empty() {
            writeln!(f)?;
            writeln!(f, "phase timings:")?;
            writeln!(f, "  {:<28} {:>7} {:>12}", "phase", "count", "total")?;
            for row in &self.phases {
                writeln!(
                    f,
                    "  {:<28} {:>7} {:>12}",
                    row.name,
                    row.count,
                    fmt_us(row.total_us)
                )?;
            }
        }
        if !self.convergence.is_empty() {
            writeln!(f)?;
            writeln!(f, "anytime convergence:")?;
            writeln!(
                f,
                "  {:>12} {:>12} {:>12} {:>8}",
                "t", "incumbent", "bound", "gap"
            )?;
            for row in &self.convergence {
                let cost = row.cost.map_or("-".to_string(), |c| c.to_string());
                let bound = row.bound.map_or("-".to_string(), |b| b.to_string());
                let gap = row.gap().map_or("-".to_string(), |g| format!("{g:.3}"));
                writeln!(
                    f,
                    "  {:>12} {:>12} {:>12} {:>8}",
                    fmt_us(row.t_us),
                    cost,
                    bound,
                    gap
                )?;
            }
            writeln!(f)?;
            match self.time_to_first_incumbent_us {
                Some(t) => writeln!(f, "time to first incumbent: {}", fmt_us(t))?,
                None => writeln!(f, "time to first incumbent: (none found)")?,
            }
            match self.time_to_final_bound_us {
                Some(t) => writeln!(f, "time to final bound:     {}", fmt_us(t))?,
                None => writeln!(f, "time to final bound:     (no bound reported)")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_the_writer_format() {
        let events = vec![
            Stamped {
                t_us: 10,
                event: TraceEvent::SpanStart {
                    name: "anytime:seed".to_string(),
                },
            },
            Stamped {
                t_us: 500,
                event: TraceEvent::Incumbent { cost: 1200 },
            },
            Stamped {
                t_us: 700,
                event: TraceEvent::Bound { value: 512 },
            },
            Stamped {
                t_us: 900,
                event: TraceEvent::SpanEnd {
                    name: "anytime:seed".to_string(),
                    dur_us: 890,
                },
            },
            Stamped {
                t_us: 1500,
                event: TraceEvent::Incumbent { cost: 1024 },
            },
            Stamped {
                t_us: 2000,
                event: TraceEvent::CacheLookup {
                    outcome: "hit".to_string(),
                },
            },
            Stamped {
                t_us: 2100,
                event: TraceEvent::Request {
                    route: "schedule".to_string(),
                    status: 200,
                    dur_us: 2000,
                },
            },
        ];
        let text: String = events.iter().map(|e| e.to_json() + "\n").collect();
        let parsed = parse_jsonl(&text).expect("parse own output");
        assert_eq!(parsed, events);
    }

    #[test]
    fn unknown_event_types_are_skipped_and_bad_lines_are_named() {
        let text = "{\"t_us\":1,\"type\":\"future_thing\",\"x\":2}\n\n{\"t_us\":2,\"type\":\"bound\",\"value\":3}\n";
        let parsed = parse_jsonl(text).unwrap();
        assert_eq!(parsed.len(), 1);
        let err = parse_jsonl("{\"t_us\":oops}").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn summary_tracks_convergence_and_phase_totals() {
        let text = "\
{\"t_us\":100,\"type\":\"incumbent\",\"cost\":2048}
{\"t_us\":200,\"type\":\"bound\",\"value\":512}
{\"t_us\":300,\"type\":\"incumbent\",\"cost\":1024}
{\"t_us\":400,\"type\":\"bound\",\"value\":1024}
{\"t_us\":500,\"type\":\"span_end\",\"name\":\"exact\",\"dur_us\":450}
{\"t_us\":510,\"type\":\"span_end\",\"name\":\"seed\",\"dur_us\":90}
{\"t_us\":520,\"type\":\"span_end\",\"name\":\"seed\",\"dur_us\":10}
";
        let s = summarize(&parse_jsonl(text).unwrap());
        assert_eq!(s.time_to_first_incumbent_us, Some(100));
        assert_eq!(s.time_to_final_bound_us, Some(400));
        assert_eq!(s.convergence.len(), 4);
        let last = s.convergence.last().unwrap();
        assert_eq!((last.cost, last.bound), (Some(1024), Some(1024)));
        assert_eq!(last.gap(), Some(1.0));
        // Phases sorted by descending total time.
        assert_eq!(s.phases[0].name, "exact");
        assert_eq!(
            s.phases[1],
            PhaseRow {
                name: "seed".to_string(),
                count: 2,
                total_us: 100,
            }
        );
        // Display renders without panicking and mentions the key numbers.
        let text = s.to_string();
        assert!(text.contains("time to first incumbent: 100us"), "{text}");
        assert!(text.contains("1.000"), "{text}");
    }
}

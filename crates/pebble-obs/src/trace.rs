//! Typed, monotonic-clock-stamped trace events and the sinks that consume
//! them.
//!
//! The engine, schedulers, server and CLI all emit through the process-global
//! sink installed with [`set_sink`]. When no sink is installed the fast path
//! is a single relaxed atomic load ([`enabled`]) — cheap enough to leave the
//! emit calls unconditionally compiled into hot loops. Timestamps are
//! microseconds since a process-wide [`std::time::Instant`] epoch, so events
//! from different threads order consistently and the analyzer can subtract
//! them directly.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One trace event. The JSONL encoding puts the variant name in a `"type"`
/// field (snake_case) next to the variant's payload fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A named phase began.
    SpanStart {
        /// Phase name, e.g. `"anytime:seed"` or `"compose:stitch"`.
        name: String,
    },
    /// A named phase ended.
    SpanEnd {
        /// Phase name matching the corresponding [`TraceEvent::SpanStart`].
        name: String,
        /// Wall-clock duration of the span in microseconds.
        dur_us: u64,
    },
    /// The search adopted a new best schedule.
    Incumbent {
        /// Cost of the new incumbent.
        cost: u64,
    },
    /// The certified lower bound rose.
    Bound {
        /// The new bound value.
        value: u64,
    },
    /// A schedule-cache lookup resolved.
    CacheLookup {
        /// `"hit"`, `"miss_absent"` or `"miss_invalid"`.
        outcome: String,
    },
    /// An HTTP request completed.
    Request {
        /// Route label, e.g. `"schedule"`.
        route: String,
        /// HTTP status code returned.
        status: u16,
        /// End-to-end request duration in microseconds.
        dur_us: u64,
    },
}

/// A [`TraceEvent`] with its timestamp in microseconds since the process
/// trace epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamped {
    /// Microseconds since the first use of the trace clock in this process.
    pub t_us: u64,
    /// The event itself.
    pub event: TraceEvent,
}

/// Where stamped events go. Implementations must tolerate concurrent `emit`
/// calls from many threads.
pub trait TraceSink: Send + Sync {
    /// Consume one event.
    fn emit(&self, event: &Stamped);
    /// Flush any buffered output (no-op by default).
    fn flush(&self) {}
}

/// A sink that drops every event. Useful to exercise the emit path in tests
/// and benchmarks without I/O.
#[derive(Debug, Default)]
pub struct DiscardSink;

impl TraceSink for DiscardSink {
    fn emit(&self, _event: &Stamped) {}
}

/// Escape a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Stamped {
    /// Encode as one flat JSON object (one line of a JSONL stream).
    pub fn to_json(&self) -> String {
        let t = self.t_us;
        match &self.event {
            TraceEvent::SpanStart { name } => {
                format!(
                    "{{\"t_us\":{t},\"type\":\"span_start\",\"name\":\"{}\"}}",
                    escape_json(name)
                )
            }
            TraceEvent::SpanEnd { name, dur_us } => {
                format!(
                    "{{\"t_us\":{t},\"type\":\"span_end\",\"name\":\"{}\",\"dur_us\":{dur_us}}}",
                    escape_json(name)
                )
            }
            TraceEvent::Incumbent { cost } => {
                format!("{{\"t_us\":{t},\"type\":\"incumbent\",\"cost\":{cost}}}")
            }
            TraceEvent::Bound { value } => {
                format!("{{\"t_us\":{t},\"type\":\"bound\",\"value\":{value}}}")
            }
            TraceEvent::CacheLookup { outcome } => {
                format!(
                    "{{\"t_us\":{t},\"type\":\"cache_lookup\",\"outcome\":\"{}\"}}",
                    escape_json(outcome)
                )
            }
            TraceEvent::Request {
                route,
                status,
                dur_us,
            } => {
                format!(
                    "{{\"t_us\":{t},\"type\":\"request\",\"route\":\"{}\",\"status\":{status},\"dur_us\":{dur_us}}}",
                    escape_json(route)
                )
            }
        }
    }
}

/// A sink that writes one JSON object per line to any `Write`.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Wrap any writer (a `File`, a `Vec<u8>` in tests, ...).
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Open (create/truncate) a file at `path` and write JSONL into it.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(file))))
    }
}

impl TraceSink for JsonlSink {
    fn emit(&self, event: &Stamped) {
        let mut out = self.out.lock().expect("trace sink poisoned");
        let _ = writeln!(out, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("trace sink poisoned").flush();
    }
}

/// Fast-path flag: true iff a global sink is installed. Checked with one
/// relaxed load before any event is constructed.
static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Arc<dyn TraceSink>>> = Mutex::new(None);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch (first use of the clock).
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Install the process-global sink. Subsequent [`emit`] calls go to it.
pub fn set_sink(sink: Arc<dyn TraceSink>) {
    let _ = epoch(); // pin t=0 at installation, not at the first event
    *SINK.lock().expect("trace sink registry poisoned") = Some(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Remove the global sink (flushing it first) and disable tracing.
pub fn clear_sink() {
    ENABLED.store(false, Ordering::Release);
    let sink = SINK.lock().expect("trace sink registry poisoned").take();
    if let Some(sink) = sink {
        sink.flush();
    }
}

/// Flush the global sink if one is installed.
pub fn flush() {
    if let Some(sink) = SINK.lock().expect("trace sink registry poisoned").as_ref() {
        sink.flush();
    }
}

/// Whether a global sink is installed. One relaxed atomic load — callers in
/// hot loops should check this before building event payloads.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Stamp `event` with the monotonic clock and send it to the global sink.
/// No-op (one atomic load) when no sink is installed.
pub fn emit(event: TraceEvent) {
    if !enabled() {
        return;
    }
    let stamped = Stamped {
        t_us: now_us(),
        event,
    };
    if let Some(sink) = SINK.lock().expect("trace sink registry poisoned").as_ref() {
        sink.emit(&stamped);
    }
}

/// A RAII phase marker: emits [`TraceEvent::SpanStart`] on creation and
/// [`TraceEvent::SpanEnd`] (with the measured duration) on drop, and always
/// records the duration into the global `phase_duration_us` histogram so
/// phase timings show up in `/metrics` even when tracing is off.
pub struct Span {
    name: &'static str,
    start: Instant,
}

/// Start a [`Span`] named `name`.
pub fn span(name: &'static str) -> Span {
    if enabled() {
        emit(TraceEvent::SpanStart {
            name: name.to_string(),
        });
    }
    Span {
        name,
        start: Instant::now(),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_us = self.start.elapsed().as_micros() as u64;
        crate::metrics::Registry::global()
            .histogram(
                "phase_duration_us",
                "Wall-clock duration of named phases, microseconds",
                &[("phase", self.name)],
            )
            .observe(dur_us);
        if enabled() {
            emit(TraceEvent::SpanEnd {
                name: self.name.to_string(),
                dur_us,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that collects events into a vector for inspection.
    #[derive(Default)]
    struct VecSink(Mutex<Vec<Stamped>>);

    impl TraceSink for VecSink {
        fn emit(&self, event: &Stamped) {
            self.0.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn events_encode_as_flat_json_lines() {
        let e = Stamped {
            t_us: 42,
            event: TraceEvent::SpanEnd {
                name: "compose:stitch".to_string(),
                dur_us: 7,
            },
        };
        assert_eq!(
            e.to_json(),
            "{\"t_us\":42,\"type\":\"span_end\",\"name\":\"compose:stitch\",\"dur_us\":7}"
        );
        let e = Stamped {
            t_us: 0,
            event: TraceEvent::Request {
                route: "schedule".to_string(),
                status: 200,
                dur_us: 1234,
            },
        };
        assert_eq!(
            e.to_json(),
            "{\"t_us\":0,\"type\":\"request\",\"route\":\"schedule\",\"status\":200,\"dur_us\":1234}"
        );
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        let e = Stamped {
            t_us: 1,
            event: TraceEvent::SpanStart {
                name: "a\"b\\c\nd\u{1}".to_string(),
            },
        };
        assert_eq!(
            e.to_json(),
            "{\"t_us\":1,\"type\":\"span_start\",\"name\":\"a\\\"b\\\\c\\nd\\u0001\"}"
        );
    }

    #[test]
    fn global_sink_receives_events_and_clear_disables() {
        let sink = Arc::new(VecSink::default());
        set_sink(sink.clone());
        emit(TraceEvent::Incumbent { cost: 9 });
        clear_sink();
        emit(TraceEvent::Incumbent { cost: 10 }); // dropped: no sink
        let events = sink.0.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event, TraceEvent::Incumbent { cost: 9 });
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(Shared(buf.clone())));
        sink.emit(&Stamped {
            t_us: 1,
            event: TraceEvent::Bound { value: 3 },
        });
        sink.emit(&Stamped {
            t_us: 2,
            event: TraceEvent::Incumbent { cost: 5 },
        });
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"bound\""));
        assert!(lines[1].contains("\"type\":\"incumbent\""));
    }
}

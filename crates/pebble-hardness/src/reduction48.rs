//! The Theorem 4.8 construction: reducing `maxinset-vertex` to the question
//! "is `OPT_PRBP < OPT_RBP` on this DAG?".
//!
//! For every vertex `u` of the source graph `G₀` the construction contains
//! two pebble-collection gadgets `H₁(u)` and `H₂(u)` with `r − 2` input slots
//! and a long chain each. The first `b` input slots of `H₁(u)` and `H₂(u)`
//! are *merged* (the same source nodes), so visiting the two gadgets
//! consecutively saves `b` reloads. Dependencies between gadget pairs encode
//! the edges of `G₀`: for every edge `{u, u'}` a node in the middle of the
//! chain of `H₁(u)` replaces an input slot of `H₂(u')` and vice versa (plus a
//! self dependency `H₁(u) → H₂(u)`), so only an independent set's gadget
//! pairs can be visited consecutively. Finally, `Z₁ ⊂ H₁(v₀)` and
//! `Z₂ ⊂ H₂(v₀)` (three extra sources each) feed one extra sink `w`: if
//! `v₀` lies in a maximum independent set, `w` is computed for free in both
//! models; otherwise PRBP pays 2 extra I/Os for `w` but RBP pays 3 — so
//! `OPT_PRBP < OPT_RBP` **iff** `maxinset-vertex(G₀, v₀)` is *false*.
//!
//! Parameters follow Appendix A.4: `r = b + 4n₀ + 5`,
//! `ℓ₀ = Θ(r·(n₀·b + |E₀| + r))` and `ℓ = 2ℓ₀ + n₀ + (r − 2)`.

use crate::independent_set::maxinset_vertex;
use crate::undirected::UGraph;
use pebble_dag::{Dag, DagBuilder, NodeId};

/// How many nodes form each of the special source sets `Z₁`, `Z₂`.
pub const Z_SIZE: usize = 3;

/// The number of merged source slots `b` (a constant larger than `|Z₁| = 3`).
pub const MERGED_SLOTS: usize = 4;

/// One pebble-collection gadget of the construction.
#[derive(Debug, Clone)]
pub struct Gadget {
    /// The `r − 2` input slots of the gadget, in order: `b` merged slots,
    /// `3·n₀` anchor slots, `n₀` dependency slots, `3` Z-capable slots.
    /// Dependency slots of an `H₂` gadget may point at chain nodes of other
    /// gadgets instead of fresh sources.
    pub slots: Vec<NodeId>,
    /// The chain nodes.
    pub chain: Vec<NodeId>,
}

/// The full Theorem 4.8 instance.
#[derive(Debug, Clone)]
pub struct Reduction48 {
    /// The constructed DAG.
    pub dag: Dag,
    /// Cache size `r = b + 4·n₀ + 5`.
    pub r: usize,
    /// Chain length `ℓ`.
    pub chain_len: usize,
    /// The `H₁` gadget of every vertex of `G₀`.
    pub h1: Vec<Gadget>,
    /// The `H₂` gadget of every vertex of `G₀`.
    pub h2: Vec<Gadget>,
    /// The extra sink `w` fed by `Z₁ ∪ Z₂`.
    pub w: NodeId,
    /// The distinguished vertex `v₀` of the `maxinset-vertex` instance.
    pub v0: usize,
    /// The source graph.
    pub source_graph: UGraph,
}

/// Parameters of the construction derived from `G₀`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parameters {
    /// Cache size `r`.
    pub r: usize,
    /// Number of input slots per gadget, `r − 2`.
    pub slots: usize,
    /// Length `ℓ₀` of each long chain section.
    pub ell0: usize,
    /// Total chain length `ℓ = 2·ℓ₀ + n₀ + (r − 2)`.
    pub ell: usize,
}

/// Compute the Appendix A.4 parameters for a source graph.
pub fn parameters(g0: &UGraph) -> Parameters {
    let n0 = g0.vertex_count();
    let e0 = g0.edge_count();
    let r = MERGED_SLOTS + 4 * n0 + 5;
    let slots = r - 2;
    // ℓ₀ chosen so that ℓ₀ / (2(r−2)) − (r−1) exceeds the worst-case cost of
    // any strategy that pebbles every gadget in one visit.
    let budget = n0 * MERGED_SLOTS + 2 * e0 + 6 + r;
    let ell0 = 2 * (r - 2) * (budget + r);
    let ell = 2 * ell0 + n0 + slots;
    Parameters {
        r,
        slots,
        ell0,
        ell,
    }
}

/// Build the Theorem 4.8 instance for the `maxinset-vertex` question
/// `(G₀, v₀)`.
pub fn build(g0: &UGraph, v0: usize) -> Reduction48 {
    assert!(v0 < g0.vertex_count());
    let n0 = g0.vertex_count();
    let p = parameters(g0);
    let mut b = DagBuilder::new();

    // Slot layout inside a gadget.
    let anchor_base = MERGED_SLOTS;
    let dep_base = anchor_base + 3 * n0;
    let z_base = dep_base + n0;
    debug_assert_eq!(z_base + Z_SIZE, p.slots);

    // First create the merged sources and the plain sources of every gadget.
    // Dependency slots of H2 gadgets are filled in later (they reference
    // chain nodes of H1 gadgets), so no source node is created for them.
    let mut h1: Vec<Gadget> = Vec::with_capacity(n0);
    let mut h2: Vec<Gadget> = Vec::with_capacity(n0);
    let placeholder = NodeId(u32::MAX);
    for u in 0..n0 {
        let merged: Vec<NodeId> = (0..MERGED_SLOTS)
            .map(|i| b.add_labeled_node(format!("m{u}_{i}")))
            .collect();
        // H1: every non-merged slot is a fresh source.
        let mut slots1 = merged.clone();
        for i in anchor_base..p.slots {
            slots1.push(b.add_labeled_node(format!("h1_{u}_s{i}")));
        }
        h1.push(Gadget {
            slots: slots1,
            chain: Vec::new(),
        });
        // H2: anchors and Z slots are fresh sources, dependency slots are
        // placeholders until the H1 chains exist.
        let mut slots2 = merged;
        for i in anchor_base..dep_base {
            slots2.push(b.add_labeled_node(format!("h2_{u}_s{i}")));
        }
        slots2.extend(std::iter::repeat(placeholder).take(n0));
        for i in z_base..p.slots {
            slots2.push(b.add_labeled_node(format!("h2_{u}_s{i}")));
        }
        h2.push(Gadget {
            slots: slots2,
            chain: Vec::new(),
        });
    }

    // Chains of the H1 gadgets (these exist independently of G0's edges).
    for (u, gadget) in h1.iter_mut().enumerate() {
        gadget.chain = (0..p.ell)
            .map(|i| b.add_labeled_node(format!("c1_{u}_{i}")))
            .collect();
        for (i, &c) in gadget.chain.iter().enumerate() {
            if i > 0 {
                b.add_edge(gadget.chain[i - 1], c);
            }
            b.add_edge(gadget.slots[i % p.slots], c);
        }
    }

    // Dependency slots of the H2 gadgets: slot `dep_base + j` of `H2(u)` is
    // the `j`-th middle chain node of `H1(u_j)` where `u_j` ranges over
    // `u` itself followed by its neighbours in G0.
    let middle_start = p.slots + p.ell0;
    for (u, h2u) in h2.iter_mut().enumerate() {
        let mut deps: Vec<usize> = vec![u];
        deps.extend((0..n0).filter(|&v| v != u && g0.has_edge(u, v)));
        // Unused dependency slots (vertices of low degree) fall back to fresh
        // anchor-like sources so every slot feeds the chain.
        for j in 0..n0 {
            h2u.slots[dep_base + j] = match deps.get(j) {
                Some(&dep) => h1[dep].chain[middle_start + u],
                None => b.add_labeled_node(format!("h2_{u}_extra{j}")),
            };
        }
    }

    // Chains of the H2 gadgets.
    for (u, gadget) in h2.iter_mut().enumerate() {
        gadget.chain = (0..p.ell)
            .map(|i| b.add_labeled_node(format!("c2_{u}_{i}")))
            .collect();
        for (i, &c) in gadget.chain.iter().enumerate() {
            if i > 0 {
                b.add_edge(gadget.chain[i - 1], c);
            }
            b.add_edge(gadget.slots[i % p.slots], c);
        }
    }

    // The extra sink w fed by Z1 ⊂ H1(v0) and Z2 ⊂ H2(v0).
    let w = b.add_labeled_node("w");
    for z in 0..Z_SIZE {
        b.add_edge(h1[v0].slots[z_base + z], w);
        b.add_edge(h2[v0].slots[z_base + z], w);
    }

    let dag = b.build().expect("Theorem 4.8 construction is a valid DAG");
    Reduction48 {
        dag,
        r: p.r,
        chain_len: p.ell,
        h1,
        h2,
        w,
        v0,
        source_graph: g0.clone(),
    }
}

impl Reduction48 {
    /// The answer the reduction encodes: `OPT_PRBP < OPT_RBP` holds on this
    /// DAG **iff** no maximum independent set of `G₀` contains `v₀`
    /// (Theorem 4.8).
    pub fn prbp_strictly_better(&self) -> bool {
        !maxinset_vertex(&self.source_graph, self.v0)
    }

    /// Total number of source nodes that are shared (merged) between an
    /// `H₁`/`H₂` pair — the I/O saving of a consecutive visit.
    pub fn merged_per_pair(&self) -> usize {
        MERGED_SLOTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_instance() -> (UGraph, usize) {
        // A triangle with a pendant vertex; vertex 3 (the pendant) is in every
        // maximum independent set of size 2, vertex 0 (its neighbour) is not
        // in all of them but is in some.
        let g = UGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3)]);
        (g, 3)
    }

    #[test]
    fn parameters_follow_appendix_a4() {
        let (g, _) = small_instance();
        let p = parameters(&g);
        assert_eq!(p.r, MERGED_SLOTS + 4 * 4 + 5);
        assert_eq!(p.slots, p.r - 2);
        assert_eq!(p.ell, 2 * p.ell0 + 4 + p.slots);
        // ℓ₀ is large enough that a single missed gadget visit dominates the
        // total budget of any reasonable strategy.
        assert!(p.ell0 / (2 * (p.slots)) > 4 * MERGED_SLOTS + 2 * g.edge_count() + 6 + p.r);
    }

    #[test]
    fn construction_has_expected_shape() {
        let (g, v0) = small_instance();
        let red = build(&g, v0);
        let p = parameters(&g);
        let n0 = g.vertex_count();
        // 2 gadgets per vertex, each with a chain of length ℓ.
        assert_eq!(red.h1.len(), n0);
        assert_eq!(red.h2.len(), n0);
        for gadget in red.h1.iter().chain(red.h2.iter()) {
            assert_eq!(gadget.chain.len(), p.ell);
            assert_eq!(gadget.slots.len(), p.slots);
        }
        // The extra sink has in-degree 2·|Z|.
        assert_eq!(red.dag.in_degree(red.w), 2 * Z_SIZE);
        assert!(red.dag.is_sink(red.w));
        // Merged slots are shared between the H1/H2 pair.
        for u in 0..n0 {
            for i in 0..MERGED_SLOTS {
                assert_eq!(red.h1[u].slots[i], red.h2[u].slots[i]);
            }
        }
        // The construction is polynomial in the source instance and the
        // chains dominate the size.
        assert!(red.dag.node_count() >= 2 * n0 * p.ell);
        assert!(red.dag.node_count() <= 2 * n0 * (p.ell + p.slots) + 1);
    }

    #[test]
    fn dependency_slots_point_into_other_chains() {
        let (g, v0) = small_instance();
        let red = build(&g, v0);
        let p = parameters(&g);
        let dep_base = MERGED_SLOTS + 3 * g.vertex_count();
        // H2(0)'s dependency slots: itself and its neighbours 1, 2, 3.
        let expected_deps = [0usize, 1, 2, 3];
        for (j, &dep) in expected_deps.iter().enumerate() {
            let slot = red.h2[0].slots[dep_base + j];
            assert_eq!(slot, red.h1[dep].chain[p.slots + p.ell0]);
            // The slot is not a source: it has in-edges (it is a chain node).
            assert!(red.dag.in_degree(slot) >= 1);
        }
        // H2(3) depends only on itself and vertex 0 (its single neighbour).
        let slot_self = red.h2[3].slots[dep_base];
        assert_eq!(slot_self, red.h1[3].chain[p.slots + p.ell0 + 3]);
        let slot_nb = red.h2[3].slots[dep_base + 1];
        assert_eq!(slot_nb, red.h1[0].chain[p.slots + p.ell0 + 3]);
        // The remaining dependency slots of H2(3) are ordinary sources.
        for j in 2..g.vertex_count() {
            let slot = red.h2[3].slots[dep_base + j];
            assert!(red.dag.is_source(slot));
        }
    }

    #[test]
    fn reduction_answer_matches_the_oracle() {
        let (g, _) = small_instance();
        // Vertex 3 is in a maximum independent set ({3, 1} or {3, 2}), so the
        // gadget pair of v0 = 3 can be visited consecutively and PRBP has no
        // advantage.
        let red = build(&g, 3);
        assert!(!red.prbp_strictly_better());
        // Vertex 0 is NOT in any maximum independent set ({1,3} and {2,3} are
        // the only ones of size 2... actually {0,?}: 0 conflicts with 1,2,3 so
        // {0} has size 1 < 2), so PRBP is strictly better there.
        let red = build(&g, 0);
        assert!(red.prbp_strictly_better());
        assert_eq!(red.merged_per_pair(), MERGED_SLOTS);
    }
}

//! Brute-force independent-set and clique oracles (Definition 4.9,
//! Lemma 4.10 and Lemma A.1).
//!
//! The reductions of the paper start from the `maxinset-vertex` problem: does
//! some *maximum* independent set of `G₀` contain a given vertex `v₀`?
//! Lemma A.1 shows this is equivalent (via graph complementation) to the
//! analogous `maxclique-vertex` problem. The instances used in experiments
//! are tiny, so exact branch-and-bound enumeration is entirely adequate.

use crate::undirected::UGraph;

/// Size of a maximum independent set of `g` (branch-and-bound enumeration).
pub fn max_independent_set_size(g: &UGraph) -> usize {
    best_extension(g, 0, &mut Vec::new())
}

/// One maximum independent set of `g` (ties broken towards smaller vertex
/// indices by the enumeration order).
pub fn max_independent_set(g: &UGraph) -> Vec<usize> {
    let mut best = Vec::new();
    collect_best(g, 0, &mut Vec::new(), &mut best);
    best
}

fn best_extension(g: &UGraph, from: usize, current: &mut Vec<usize>) -> usize {
    let n = g.vertex_count();
    if from == n {
        return current.len();
    }
    // Upper bound prune: even taking every remaining vertex cannot beat an
    // already-complete branch of the same size.
    let mut best = current.len();
    for v in from..n {
        if current.iter().all(|&u| !g.has_edge(u, v)) {
            current.push(v);
            best = best.max(best_extension(g, v + 1, current));
            current.pop();
        }
    }
    best.max(best_extension_skip(g, from, current))
}

fn best_extension_skip(g: &UGraph, _from: usize, current: &mut [usize]) -> usize {
    // Taking no further vertex.
    let _ = g;
    current.len()
}

fn collect_best(g: &UGraph, from: usize, current: &mut Vec<usize>, best: &mut Vec<usize>) {
    if current.len() > best.len() {
        *best = current.clone();
    }
    let n = g.vertex_count();
    for v in from..n {
        if current.iter().all(|&u| !g.has_edge(u, v)) {
            current.push(v);
            collect_best(g, v + 1, current, best);
            current.pop();
        }
    }
}

/// The `maxinset-vertex` problem (Definition 4.9): is there a *maximum*
/// independent set of `g` containing vertex `v0`?
pub fn maxinset_vertex(g: &UGraph, v0: usize) -> bool {
    assert!(v0 < g.vertex_count());
    let optimum = max_independent_set_size(g);
    // Force v0 into the set: drop v0's neighbours and v0 itself, find the
    // best independent set among the remaining vertices, and add 1.
    let mut current = vec![v0];
    let mut best = vec![v0];
    collect_best_containing(g, 0, v0, &mut current, &mut best);
    best.len() == optimum
}

fn collect_best_containing(
    g: &UGraph,
    from: usize,
    v0: usize,
    current: &mut Vec<usize>,
    best: &mut Vec<usize>,
) {
    if current.len() > best.len() {
        *best = current.clone();
    }
    for v in from..g.vertex_count() {
        if v == v0 {
            continue;
        }
        if current.iter().all(|&u| !g.has_edge(u, v)) {
            current.push(v);
            collect_best_containing(g, v + 1, v0, current, best);
            current.pop();
        }
    }
}

/// The `maxclique-vertex` problem (Lemma A.1): is there a maximum clique of
/// `g` containing `v0`? Solved via the complement-graph equivalence.
pub fn maxclique_vertex(g: &UGraph, v0: usize) -> bool {
    maxinset_vertex(&g.complement(), v0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_set_of_cycle_5() {
        let c5 = UGraph::cycle(5);
        assert_eq!(max_independent_set_size(&c5), 2);
        let set = max_independent_set(&c5);
        assert_eq!(set.len(), 2);
        assert!(!c5.has_edge(set[0], set[1]));
    }

    #[test]
    fn independent_set_of_complete_graph_is_single_vertex() {
        let k4 = UGraph::complete(4);
        assert_eq!(max_independent_set_size(&k4), 1);
        // Every vertex lies in some maximum independent set (a singleton).
        for v in 0..4 {
            assert!(maxinset_vertex(&k4, v));
        }
    }

    #[test]
    fn independent_set_of_empty_graph_is_everything() {
        let g = UGraph::new(6);
        // No edges, but our UGraph requires none anyway for this test.
        assert_eq!(max_independent_set_size(&g), 6);
        assert_eq!(max_independent_set(&g), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn maxinset_vertex_distinguishes_vertices() {
        // A star K_{1,3}: the maximum independent set is the 3 leaves; the
        // centre is in no maximum independent set.
        let star = UGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(max_independent_set_size(&star), 3);
        assert!(!maxinset_vertex(&star, 0));
        assert!(maxinset_vertex(&star, 1));
        assert!(maxinset_vertex(&star, 2));
        assert!(maxinset_vertex(&star, 3));
    }

    #[test]
    fn maxclique_vertex_matches_complement_reduction() {
        // In the complement of the star, vertex 0 is isolated from the
        // triangle {1,2,3}; the maximum clique is the triangle.
        let star = UGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let comp = star.complement();
        assert!(!maxclique_vertex(&comp, 0));
        assert!(maxclique_vertex(&comp, 1));
        // Consistency of the two oracles under complementation (Lemma A.1).
        for v in 0..4 {
            assert_eq!(maxinset_vertex(&star, v), maxclique_vertex(&comp, v));
        }
    }

    #[test]
    fn path_graph_parity_example() {
        // Path on 4 vertices 0-1-2-3: maximum independent sets are {0,2},
        // {0,3}, {1,3}: every vertex is in some maximum independent set.
        let p4 = UGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(max_independent_set_size(&p4), 2);
        for v in 0..4 {
            assert!(maxinset_vertex(&p4, v), "vertex {v}");
        }
        // Path on 5 vertices: the unique maximum independent set is {0,2,4}.
        let p5 = UGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(max_independent_set_size(&p5), 3);
        assert!(maxinset_vertex(&p5, 0));
        assert!(!maxinset_vertex(&p5, 1));
        assert!(maxinset_vertex(&p5, 2));
        assert!(!maxinset_vertex(&p5, 3));
        assert!(maxinset_vertex(&p5, 4));
    }
}

//! # pebble-hardness
//!
//! The complexity-theoretic side of the paper:
//!
//! * [`undirected`] — a small undirected-graph type used as the source
//!   problem of the reductions.
//! * [`independent_set`] — brute-force maximum independent set,
//!   `maxinset-vertex` and `maxclique-vertex` oracles (Definition 4.9,
//!   Lemma 4.10 / Lemma A.1).
//! * [`reduction48`] — the Theorem 4.8 construction reducing
//!   `maxinset-vertex` to the question `OPT_PRBP < OPT_RBP?`.
//! * [`level_gadgets`] — the Theorem 7.1 level-gadget towers with the
//!   auxiliary levels that adapt the inapproximability construction of \[3\] to
//!   PRBP.

#![deny(missing_docs)]

pub mod independent_set;
pub mod level_gadgets;
pub mod reduction48;
pub mod undirected;

pub use undirected::UGraph;

//! The Theorem 7.1 level-gadget towers with auxiliary levels.
//!
//! The inapproximability construction of \[3\] builds *towers* of consecutive
//! *levels*; a level of size `ℓ` is a chain `u₁ → … → u_ℓ`, and consecutive
//! levels `(u₁..u_ℓ) → (v₁..v_ℓ′)` are connected by the edges `(u_i, v_i)`
//! for `i ≤ min(ℓ, ℓ′)` plus `(u_i, v_ℓ′)` for `ℓ′ < i ≤ ℓ`. To carry the
//! construction over to PRBP, the paper inserts **auxiliary levels**:
//!
//! * at least one auxiliary level (of the size of the following original
//!   level) before every original level, so that precedence edges from other
//!   towers can target the auxiliary level;
//! * when a level shrinks from `ℓ` to `ℓ′ < ℓ`, `(ℓ − ℓ′ + 2)` auxiliary
//!   levels are inserted and every "extra" node `u_{ℓ′+1}, …, u_ℓ` gains an
//!   edge to the *last* node of each of those auxiliary levels, so partially
//!   computing those last nodes can never free up pebbles;
//! * one auxiliary level is appended on top of every tower.
//!
//! Adding auxiliary levels does not change the optimal RBP cost (verified on
//! small instances against the exact solver in the tests below).

use pebble_dag::{Dag, DagBuilder, NodeId};

/// A single (original or auxiliary) level of a tower.
#[derive(Debug, Clone)]
pub struct Level {
    /// The chain nodes of the level, in order.
    pub nodes: Vec<NodeId>,
    /// Whether this is one of the inserted auxiliary levels.
    pub auxiliary: bool,
}

/// A tower: a sequence of levels with the connection pattern described above.
#[derive(Debug, Clone)]
pub struct Tower {
    /// All levels bottom-up (auxiliary levels included, in position).
    pub levels: Vec<Level>,
}

impl Tower {
    /// Indices of the original (non-auxiliary) levels.
    pub fn original_level_indices(&self) -> Vec<usize> {
        self.levels
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.auxiliary)
            .map(|(i, _)| i)
            .collect()
    }

    /// The auxiliary level directly below original level `i` (if any): the
    /// target for cross-tower precedence edges.
    pub fn entry_level_for(&self, original_index: usize) -> Option<&Level> {
        let idx = *self.original_level_indices().get(original_index)?;
        (idx > 0 && self.levels[idx - 1].auxiliary).then(|| &self.levels[idx - 1])
    }
}

/// A built tower DAG.
#[derive(Debug, Clone)]
pub struct TowerDag {
    /// The DAG (a single tower).
    pub dag: Dag,
    /// The tower structure.
    pub tower: Tower,
}

/// Connect two consecutive levels with the construction's edge pattern.
fn connect_levels(b: &mut DagBuilder, lower: &[NodeId], upper: &[NodeId]) {
    let l = lower.len();
    let lp = upper.len();
    for i in 0..l.min(lp) {
        b.add_edge(lower[i], upper[i]);
    }
    if l > lp {
        for &low in &lower[lp..l] {
            b.add_edge(low, upper[lp - 1]);
        }
    }
}

/// Build a single tower from the original level sizes. With
/// `with_aux_levels = false` the original construction of \[3\] is produced;
/// with `true` the Theorem 7.1 auxiliary levels are inserted.
pub fn build_tower(original_sizes: &[usize], with_aux_levels: bool) -> TowerDag {
    assert!(!original_sizes.is_empty());
    assert!(original_sizes.iter().all(|&s| s >= 1));
    let mut b = DagBuilder::new();
    let mut levels: Vec<Level> = Vec::new();
    let mut counter = 0usize;
    let make_level = |b: &mut DagBuilder, size: usize, auxiliary: bool, counter: &mut usize| {
        let nodes: Vec<NodeId> = (0..size)
            .map(|i| {
                b.add_labeled_node(format!(
                    "{}{}_{}",
                    if auxiliary { "a" } else { "L" },
                    *counter,
                    i
                ))
            })
            .collect();
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        *counter += 1;
        Level { nodes, auxiliary }
    };

    for (idx, &size) in original_sizes.iter().enumerate() {
        if with_aux_levels && idx > 0 {
            let prev_size = original_sizes[idx - 1];
            // Number of auxiliary levels before this original level.
            let aux_count = if prev_size > size {
                prev_size - size + 2
            } else {
                1
            };
            for a in 0..aux_count {
                let aux = make_level(&mut b, size, true, &mut counter);
                let prev_nodes = levels.last().expect("previous level exists").nodes.clone();
                connect_levels(&mut b, &prev_nodes, &aux.nodes);
                // Shrinking levels: every extra node of the previous original
                // level also feeds the last node of each auxiliary level, so
                // the extra nodes stay "locked" until the auxiliary levels are
                // reached (the ≥ ℓ pebble argument of Appendix A.5).
                if prev_size > size && a > 0 {
                    let original_prev = levels
                        .iter()
                        .rev()
                        .find(|l| !l.auxiliary)
                        .expect("an original level exists");
                    let last_aux_node = *aux.nodes.last().expect("non-empty level");
                    for &extra in &original_prev.nodes[size..] {
                        b.add_edge(extra, last_aux_node);
                    }
                }
                levels.push(aux);
            }
        }
        let level = make_level(&mut b, size, false, &mut counter);
        if let Some(prev) = levels.last() {
            let prev_nodes = prev.nodes.clone();
            connect_levels(&mut b, &prev_nodes, &level.nodes);
        }
        levels.push(level);
    }
    if with_aux_levels {
        // One auxiliary level on top of the tower.
        let top_size = *original_sizes.last().expect("non-empty");
        let aux = make_level(&mut b, top_size, true, &mut counter);
        let prev_nodes = levels.last().expect("previous level").nodes.clone();
        connect_levels(&mut b, &prev_nodes, &aux.nodes);
        levels.push(aux);
    }
    let dag = b.build().expect("tower is a valid DAG");
    TowerDag {
        dag,
        tower: Tower { levels },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_game::exact::{self, SearchConfig};
    use pebble_game::prbp::PrbpConfig;
    use pebble_game::rbp::RbpConfig;
    use pebble_game::strategies::topological;

    #[test]
    fn plain_tower_shape() {
        let t = build_tower(&[3, 3, 2], false);
        assert_eq!(t.tower.levels.len(), 3);
        // 8 nodes; chain edges 2+2+1, inter-level edges 3 + (2 + 1 extra).
        assert_eq!(t.dag.node_count(), 8);
        assert_eq!(t.dag.edge_count(), 5 + 3 + 3);
        assert!(t.tower.levels.iter().all(|l| !l.auxiliary));
    }

    #[test]
    fn aux_levels_are_inserted_per_the_rules() {
        let t = build_tower(&[3, 3, 2], true);
        let sizes: Vec<(usize, bool)> = t
            .tower
            .levels
            .iter()
            .map(|l| (l.nodes.len(), l.auxiliary))
            .collect();
        // Level sizes: original 3; 1 aux of size 3; original 3; (3-2+2)=3 aux
        // of size 2; original 2; 1 aux of size 2 on top.
        assert_eq!(
            sizes,
            vec![
                (3, false),
                (3, true),
                (3, false),
                (2, true),
                (2, true),
                (2, true),
                (2, false),
                (2, true),
            ]
        );
        // Entry level of original level 1 is the auxiliary level below it.
        let entry = t.tower.entry_level_for(1).expect("entry level exists");
        assert!(entry.auxiliary);
        assert_eq!(entry.nodes.len(), 3);
        assert_eq!(t.tower.original_level_indices(), vec![0, 2, 6]);
    }

    #[test]
    fn shrinking_levels_lock_extra_nodes() {
        // From size 3 to size 2: the extra node u3 of the original level must
        // feed the last node of the 2nd and 3rd auxiliary levels.
        let t = build_tower(&[3, 2], true);
        let original = &t.tower.levels[0];
        let extra = original.nodes[2];
        let extra_out = t.dag.out_degree(extra);
        // u3 feeds: its chain successor (none, it is the last), the last node
        // of the first aux level (the standard ℓ > ℓ′ edge), and the last
        // nodes of the later aux levels (the locking edges).
        assert!(extra_out >= 3, "extra node only has {extra_out} out-edges");
    }

    #[test]
    fn aux_levels_do_not_change_rbp_optimum_on_small_towers() {
        // Theorem 7.1: the auxiliary levels leave the RBP behaviour unchanged.
        let plain = build_tower(&[2, 2], false);
        let adjusted = build_tower(&[2, 2], true);
        let r = 3;
        let plain_opt =
            exact::optimal_rbp_cost(&plain.dag, RbpConfig::new(r), SearchConfig::default())
                .unwrap();
        let adjusted_opt =
            exact::optimal_rbp_cost(&adjusted.dag, RbpConfig::new(r), SearchConfig::default())
                .unwrap();
        assert_eq!(plain_opt, adjusted_opt);
    }

    #[test]
    fn towers_are_pebblable_by_the_generic_strategies() {
        let t = build_tower(&[4, 3, 3, 2], true);
        let r = t.dag.max_in_degree() + 1;
        let rbp = topological::rbp_topological(&t.dag, r).unwrap();
        assert!(rbp.validate(&t.dag, RbpConfig::new(r)).is_ok());
        let prbp = topological::prbp_topological(&t.dag, 2).unwrap();
        assert!(prbp.validate(&t.dag, PrbpConfig::new(2)).is_ok());
    }
}

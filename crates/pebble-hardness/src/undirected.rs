//! A small undirected graph type used as the source problem of the
//! hardness reductions.

use serde::{Deserialize, Serialize};

/// An undirected simple graph on `n` vertices, stored as an adjacency matrix
/// (the reductions only ever use small instances).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UGraph {
    n: usize,
    adj: Vec<bool>,
}

impl UGraph {
    /// Create an empty graph on `n ≥ 1` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        UGraph {
            n,
            adj: vec![false; n * n],
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges().count()
    }

    /// Add the undirected edge `{u, v}`; ignores self-loops.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n);
        if u == v {
            return;
        }
        self.adj[u * self.n + v] = true;
        self.adj[v * self.n + u] = true;
    }

    /// Returns `true` if `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u * self.n + v]
    }

    /// Iterate over the edges as ordered pairs `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |u| {
            ((u + 1)..self.n).filter_map(move |v| self.has_edge(u, v).then_some((u, v)))
        })
    }

    /// Degree of vertex `u`.
    pub fn degree(&self, u: usize) -> usize {
        (0..self.n).filter(|&v| self.has_edge(u, v)).count()
    }

    /// The complement graph (same vertices, complemented edge set).
    pub fn complement(&self) -> UGraph {
        let mut c = UGraph::new(self.n);
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                if !self.has_edge(u, v) {
                    c.add_edge(u, v);
                }
            }
        }
        c
    }

    /// Build a graph from an edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = UGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// The cycle graph C_n.
    pub fn cycle(n: usize) -> Self {
        let mut g = UGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    /// The complete graph K_n.
    pub fn complete(n: usize) -> Self {
        let mut g = UGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_edge_operations() {
        let mut g = UGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(1, 1); // ignored self-loop
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 1));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn complement_of_cycle4() {
        let c4 = UGraph::cycle(4);
        let comp = c4.complement();
        assert_eq!(comp.edge_count(), 2);
        assert!(comp.has_edge(0, 2));
        assert!(comp.has_edge(1, 3));
        // Complementing twice gives the original.
        assert_eq!(comp.complement(), c4);
    }

    #[test]
    fn complete_graph_counts() {
        let k5 = UGraph::complete(5);
        assert_eq!(k5.edge_count(), 10);
        assert_eq!(k5.complement().edge_count(), 0);
        assert_eq!(k5.degree(0), 4);
    }

    #[test]
    fn from_edges_matches_manual_construction() {
        let g = UGraph::from_edges(3, &[(0, 1), (2, 1)]);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && !g.has_edge(0, 2));
    }
}

//! E11 — Theorem 6.10: standard matrix multiplication. The PRBP tiled
//! strategy costs `Θ(m₁m₂m₃/√r)`, stays above the lower bound and far below
//! the naive RBP baseline.

use crate::Table;
use pebble_bounds::analytic::matmul_prbp_lower_bound;
use pebble_dag::generators::matmul;
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;
use pebble_game::strategies::matmul as mm_strategies;

/// (m, r) pairs (square multiplications) swept by the experiment.
pub const CASES: [(usize, usize); 5] = [(6, 9), (8, 9), (8, 25), (12, 25), (12, 49)];

/// Build the E11 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E11 (Thm 6.10): m x m x m matrix multiplication",
        &[
            "m",
            "r",
            "lower bound",
            "PRBP tiled",
            "naive RBP (r=m+3)",
            "tiled/naive",
        ],
    );
    for (m, r) in CASES {
        let g = matmul(m, m, m);
        let tiled = mm_strategies::prbp_tiled(&g, r)
            .unwrap()
            .validate(&g.dag, PrbpConfig::new(r))
            .unwrap();
        let naive = mm_strategies::rbp_naive(&g, m + 3)
            .unwrap()
            .validate(&g.dag, RbpConfig::new(m + 3))
            .unwrap();
        let bound = matmul_prbp_lower_bound(m, m, m, r);
        t.check(tiled as f64 >= bound);
        t.check(tiled < naive);
        t.push_row([
            m.to_string(),
            r.to_string(),
            format!("{bound:.0}"),
            tiled.to_string(),
            naive.to_string(),
            format!("{:.2}", tiled as f64 / naive as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiled_beats_naive_and_respects_bound() {
        let t = super::run();
        for row in &t.rows {
            let bound: f64 = row[2].parse().unwrap();
            let tiled: f64 = row[3].parse().unwrap();
            let naive: f64 = row[4].parse().unwrap();
            assert!(tiled >= bound, "{row:?}");
            assert!(tiled < naive, "{row:?}");
        }
    }

    #[test]
    fn larger_cache_reduces_tiled_cost() {
        let t = super::run();
        // m = 8: r = 9 vs r = 25.
        let c9: usize = t.rows[1][3].parse().unwrap();
        let c25: usize = t.rows[2][3].parse().unwrap();
        assert!(c25 < c9);
    }
}

//! E17 — structure-aware scheduling (`pebble-sched::compose`): DAG
//! decomposition + divide-and-conquer composition, measured against both
//! the certified lower bounds and the generic portfolio of E16.
//!
//! The generic portfolio is blind to the block/tile structure the paper's
//! hand-built strategies exploit and lands at 3.0–6.6× certified gaps on
//! the structured families; the compose pipeline recovers that structure
//! from the graph alone. The registered checks pin:
//!
//! * every compose trace replays through the independent simulator and its
//!   cost is at least every admissible bound (gap finite, ≥ 1);
//! * compose never loses to the best generic portfolio member on any row;
//! * on the FFT, matmul and attention rows the certified gap is at most
//!   2.5× — the territory of the paper's hand-built strategies, reached
//!   here without family knowledge;
//! * on instances within exact reach (a tree, a series-parallel gadget and
//!   a forest of small weak components) compose returns *the optimum*, and
//!   on the forest the composable bound certifies the gap 1.0 exactly.
//!
//! This corpus (minus the exactness rows) also feeds `bench_sched`'s
//! committed baseline through the E16 corpus, where `compose` runs as a
//! portfolio member.

use crate::runner;
use crate::Table;
use pebble_dag::generators::{
    attention_qk, binary_tree, fft, matmul, random_layered, RandomLayeredConfig,
};
use pebble_dag::{Dag, DagBuilder};
use pebble_game::exact::{optimal_prbp_cost, SearchConfig};
use pebble_game::prbp::PrbpConfig;
use pebble_sched::{
    best_prbp, certify_prbp_with_bounds, compose_prbp, default_suite, BoundSet, BoundValue,
    ComposeConfig,
};

/// One corpus instance.
pub struct ComposeInstance {
    /// Stable instance id.
    pub id: &'static str,
    /// Cache size.
    pub r: usize,
    /// The DAG to schedule.
    pub dag: Dag,
    /// `Some(cap)`: the certified gap must be at most `cap` (the structured
    /// families).
    pub gap_cap: Option<f64>,
    /// `Some(cost)`: the replayed cost must not regress past this pinned
    /// value — the cost each structured row achieved when the pin was
    /// last reviewed (gaps are ratios and round in the table, so the
    /// regression gate is the exact integer cost).
    pub cost_cap: Option<usize>,
    /// The instance is within exact reach and compose must return the
    /// optimum.
    pub expect_exact: bool,
}

/// A small fixed series-parallel gadget (nested series/parallel composition,
/// 12 nodes).
pub fn sp_gadget() -> Dag {
    let mut b = DagBuilder::new();
    let n = b.add_nodes(12);
    for (u, v) in [
        (0, 1),
        (0, 2),
        (1, 3),
        (2, 3), // inner diamond 0-3
        (3, 4),
        (4, 11),
        (3, 5),
        (5, 6),
        (5, 7),
        (6, 8),
        (7, 8),
        (8, 11), // second arm with nested diamond
        (0, 9),
        (9, 10),
        (10, 11), // long parallel arm
    ] {
        b.add_edge(n[u], n[v]);
    }
    b.build().expect("series-parallel gadget is a valid DAG")
}

/// A forest of `copies` disjoint depth-2 binary reduction trees.
pub fn tree_forest(copies: usize) -> Dag {
    let mut b = DagBuilder::new();
    for _ in 0..copies {
        let leaves: Vec<_> = (0..4).map(|_| b.add_node()).collect();
        let mids: Vec<_> = (0..2).map(|_| b.add_node()).collect();
        let root = b.add_node();
        b.add_edge(leaves[0], mids[0]);
        b.add_edge(leaves[1], mids[0]);
        b.add_edge(leaves[2], mids[1]);
        b.add_edge(leaves[3], mids[1]);
        b.add_edge(mids[0], root);
        b.add_edge(mids[1], root);
    }
    b.build().expect("forest is a valid DAG")
}

/// The E17 corpus.
pub fn corpus() -> Vec<ComposeInstance> {
    vec![
        ComposeInstance {
            id: "fft-64",
            r: 16,
            dag: fft(64).dag,
            gap_cap: Some(2.5),
            cost_cap: Some(256),
            expect_exact: false,
        },
        ComposeInstance {
            id: "fft-256",
            r: 64,
            dag: fft(256).dag,
            gap_cap: Some(2.5),
            cost_cap: Some(1024),
            expect_exact: false,
        },
        ComposeInstance {
            id: "matmul-8",
            r: 24,
            dag: matmul(8, 8, 8).dag,
            gap_cap: Some(2.5),
            cost_cap: Some(320),
            expect_exact: false,
        },
        ComposeInstance {
            id: "matmul-16",
            r: 64,
            dag: matmul(16, 16, 16).dag,
            gap_cap: Some(2.5),
            cost_cap: Some(1792),
            expect_exact: false,
        },
        ComposeInstance {
            id: "attention-qk-16x4",
            r: 68,
            dag: attention_qk(16, 4).dag,
            gap_cap: Some(2.5),
            cost_cap: Some(455),
            expect_exact: false,
        },
        ComposeInstance {
            id: "tree-15",
            r: 3,
            dag: binary_tree(3),
            gap_cap: None,
            cost_cap: None,
            expect_exact: true,
        },
        ComposeInstance {
            id: "sp-12",
            r: 3,
            dag: sp_gadget(),
            gap_cap: None,
            cost_cap: None,
            expect_exact: true,
        },
        ComposeInstance {
            id: "forest-6x7",
            r: 3,
            dag: tree_forest(6),
            gap_cap: None,
            cost_cap: None,
            expect_exact: true,
        },
        ComposeInstance {
            id: "random-96x30",
            r: 32,
            dag: random_layered(RandomLayeredConfig {
                layers: 30,
                width: 96,
                max_in_degree: 3,
                seed: 5,
            }),
            gap_cap: None,
            cost_cap: None,
            expect_exact: false,
        },
    ]
}

/// One measured row.
pub struct ComposeRow {
    /// The compose run: stitched trace, winning strategy and component
    /// statistics, and the composable bound.
    pub outcome: pebble_sched::ComposeOutcome,
    /// The certified report of the stitched trace (independent replay).
    pub report: pebble_sched::ScheduleReport,
    /// Best generic-portfolio cost on the same instance.
    pub portfolio_cost: usize,
}

/// Run compose on one instance and certify the result.
pub fn measure(inst: &ComposeInstance) -> ComposeRow {
    // The corpus already fans out across the parallel runner, so the inner
    // per-component dispatch stays single-threaded.
    let config = ComposeConfig {
        threads: 1,
        ..ComposeConfig::default()
    };
    let outcome =
        compose_prbp(&inst.dag, inst.r, &config).expect("corpus instances are schedulable");
    let extra: Vec<BoundValue> = outcome
        .composed_bound
        .map(|value| BoundValue {
            name: "compose".to_string(),
            value,
        })
        .into_iter()
        .collect();
    let report = certify_prbp_with_bounds(
        &inst.dag,
        inst.r,
        &outcome.trace,
        "compose",
        BoundSet::auto_for(&inst.dag),
        extra,
    )
    .expect("stitched traces replay through the independent simulator");
    let (_, _, portfolio_cost) =
        best_prbp(&inst.dag, inst.r, &default_suite()).expect("portfolio handles the corpus");
    ComposeRow {
        outcome,
        report,
        portfolio_cost,
    }
}

/// Build the E17 table, sweeping the corpus across all cores.
pub fn run() -> Table {
    run_with_threads(runner::default_threads())
}

/// [`run`] with an explicit worker count.
pub fn run_with_threads(threads: usize) -> Table {
    let mut t = Table::new(
        "E17 (compose): structure-aware decomposition closes the certified gap",
        &[
            "instance",
            "nodes",
            "r",
            "strategy",
            "comps",
            "exact",
            "cost",
            "portfolio",
            "best LB",
            "gap",
        ],
    );
    let instances = corpus();
    let rows =
        runner::run_parallel_with_threads(instances.iter().collect::<Vec<_>>(), measure, threads);
    for (inst, row) in instances.iter().zip(&rows) {
        // The replayed cost brackets every admissible bound.
        t.check(row.report.cost == row.outcome.cost);
        t.check(row.report.bounds.iter().all(|b| row.report.cost >= b.value));
        t.check(row.report.gap().is_finite() && row.report.gap() >= 1.0);
        // Structure-awareness never loses to the generic portfolio.
        t.check(row.outcome.cost <= row.portfolio_cost);
        if let Some(cap) = inst.gap_cap {
            t.check(row.report.gap() <= cap);
        }
        if let Some(cost_cap) = inst.cost_cap {
            t.check(row.outcome.cost <= cost_cap);
        }
        if inst.expect_exact {
            if inst.dag.node_count() <= 20 {
                // Within whole-instance A* reach: compare to the optimum.
                let opt =
                    optimal_prbp_cost(&inst.dag, PrbpConfig::new(inst.r), SearchConfig::default())
                        .expect("exact rows are solver-sized");
                t.check(row.outcome.cost == opt);
            } else {
                // Beyond whole-instance A* reach (the forest): optimality is
                // proved by certification instead — the cost *equals* the
                // admissible composable bound, so the gap is exactly 1.0.
                t.check((row.report.gap() - 1.0).abs() < 1e-9);
                t.check(row.report.bounds.iter().any(|b| b.name == "compose"));
            }
        }
        t.push_row([
            inst.id.to_string(),
            inst.dag.node_count().to_string(),
            inst.r.to_string(),
            row.outcome.strategy.to_string(),
            row.outcome.components.to_string(),
            row.outcome.exact_components.to_string(),
            row.outcome.cost.to_string(),
            row.portfolio_cost.to_string(),
            row.report.best_bound.to_string(),
            format!("{:.2}", row.report.gap()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::decompose::is_series_parallel;

    #[test]
    fn corpus_covers_the_acceptance_families() {
        let c = corpus();
        for family in ["fft", "matmul", "attention", "tree", "sp", "forest"] {
            assert!(
                c.iter().any(|i| i.id.starts_with(family)),
                "missing {family}"
            );
        }
        assert!(c.iter().filter(|i| i.gap_cap.is_some()).count() >= 5);
        assert!(c.iter().filter(|i| i.cost_cap.is_some()).count() >= 5);
        assert!(c.iter().filter(|i| i.expect_exact).count() >= 3);
    }

    #[test]
    fn sp_gadget_is_series_parallel_and_solver_sized() {
        let g = sp_gadget();
        assert!(is_series_parallel(&g));
        assert!(g.node_count() <= 20);
    }

    #[test]
    fn forest_has_solver_sized_components() {
        let f = tree_forest(6);
        assert_eq!(f.node_count(), 42);
        let d = pebble_dag::decompose::decompose(&f, pebble_dag::decompose::Strategy::Wcc).unwrap();
        assert_eq!(d.components.len(), 6);
        assert!(d.components.iter().all(|c| c.nodes.len() == 7));
    }
}

//! E13 — Theorem 7.1 / Figure 5: the level-gadget towers with auxiliary
//! levels. The table reports, for a few tower profiles, how many auxiliary
//! levels the PRBP adjustment inserts and verifies (on instances small enough
//! for the exact solver) that the adjustment leaves the RBP optimum
//! unchanged.

use crate::Table;
use pebble_game::exact::{self, SearchConfig};
use pebble_game::rbp::RbpConfig;
use pebble_hardness::level_gadgets::build_tower;

/// Tower level-size profiles swept by the experiment. Only the first two are
/// small enough for the exact solver; the rest report structure only.
pub const PROFILES: [&[usize]; 4] = [&[2, 2], &[3, 2], &[3, 3, 2], &[5, 4, 4, 2]];

/// Build the E13 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E13 (Thm 7.1, Fig 5): level gadgets with auxiliary levels",
        &[
            "levels",
            "plain nodes",
            "adjusted nodes",
            "aux levels",
            "RBP opt plain",
            "RBP opt adjusted",
        ],
    );
    for (idx, profile) in PROFILES.iter().enumerate() {
        let plain = build_tower(profile, false);
        let adjusted = build_tower(profile, true);
        let aux_count = adjusted.tower.levels.iter().filter(|l| l.auxiliary).count();
        let exact_small = idx < 2;
        let (plain_opt, adjusted_opt) = if exact_small {
            let r = plain.dag.max_in_degree().max(adjusted.dag.max_in_degree()) + 1;
            (
                exact::optimal_rbp_cost(&plain.dag, RbpConfig::new(r), SearchConfig::default())
                    .map(|c| c.to_string())
                    .unwrap_or_else(|_| "-".into()),
                exact::optimal_rbp_cost(&adjusted.dag, RbpConfig::new(r), SearchConfig::default())
                    .map(|c| c.to_string())
                    .unwrap_or_else(|_| "-".into()),
            )
        } else {
            ("-".into(), "-".into())
        };
        // Theorem 7.1: the auxiliary levels must not change the optimum.
        if plain_opt != "-" && adjusted_opt != "-" {
            t.check(plain_opt == adjusted_opt);
        }
        t.check(adjusted.dag.node_count() > plain.dag.node_count());
        t.push_row([
            format!("{profile:?}"),
            plain.dag.node_count().to_string(),
            adjusted.dag.node_count().to_string(),
            aux_count.to_string(),
            plain_opt,
            adjusted_opt,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn auxiliary_levels_preserve_the_rbp_optimum_where_computed() {
        let t = super::run();
        for row in &t.rows {
            if row[4] != "-" && row[5] != "-" {
                assert_eq!(row[4], row[5], "{row:?}");
            }
            let plain: usize = row[1].parse().unwrap();
            let adjusted: usize = row[2].parse().unwrap();
            assert!(adjusted > plain);
        }
    }
}

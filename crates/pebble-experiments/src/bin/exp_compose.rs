//! Prints the E17 (structure-aware scheduling) experiment table: the
//! compose pipeline — decomposition, per-component scheduling (exact below
//! the node budget), boundary-aware stitching — measured against the
//! certified lower bounds and the generic portfolio.
//!
//! `--json` additionally emits the table as one machine-readable JSON object
//! after the unchanged plain-text table. Exits nonzero if any validation
//! check of the experiment failed.
fn main() -> std::process::ExitCode {
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("exp_compose: unknown flag {other} (supported: --json)");
                return std::process::ExitCode::FAILURE;
            }
        }
    }
    pebble_experiments::emit_with(pebble_experiments::e17_compose::run(), json)
}

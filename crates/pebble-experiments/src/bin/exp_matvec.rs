//! Prints the E2 (Proposition 4.3) experiment table.
//! Exits nonzero if any validation check of the experiment failed.
fn main() -> std::process::ExitCode {
    pebble_experiments::emit(pebble_experiments::e02_matvec::run())
}

//! Prints the E2 (Proposition 4.3) experiment table.
fn main() {
    println!("{}", pebble_experiments::e02_matvec::run());
}

//! Prints the E4 (Proposition 4.5 / Appendix A.2) experiment table.
//! Exits nonzero if any validation check of the experiment failed.
fn main() -> std::process::ExitCode {
    pebble_experiments::emit(pebble_experiments::e04_trees::run())
}

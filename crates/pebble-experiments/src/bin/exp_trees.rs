//! Prints the E4 (Proposition 4.5 / Appendix A.2) experiment table.
fn main() {
    println!("{}", pebble_experiments::e04_trees::run());
}

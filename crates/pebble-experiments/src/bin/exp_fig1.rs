//! Prints the E1 (Proposition 4.2 / Figure 1) experiment table.
//! Exits nonzero if any validation check of the experiment failed.
fn main() -> std::process::ExitCode {
    pebble_experiments::emit(pebble_experiments::e01_fig1::run())
}

//! Prints the E1 (Proposition 4.2 / Figure 1) experiment table.
fn main() {
    println!("{}", pebble_experiments::e01_fig1::run());
}

//! Prints the E3 (Proposition 4.4) experiment table.
fn main() {
    println!("{}", pebble_experiments::e03_zipper::run());
}

//! Prints the E3 (Proposition 4.4) experiment table.
//! Exits nonzero if any validation check of the experiment failed.
fn main() -> std::process::ExitCode {
    pebble_experiments::emit(pebble_experiments::e03_zipper::run())
}

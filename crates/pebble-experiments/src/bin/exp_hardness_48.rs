//! Prints the E7 (Theorem 4.8) experiment table.
fn main() {
    println!("{}", pebble_experiments::e07_hardness_48::run());
}

//! Prints the E7 (Theorem 4.8) experiment table.
//! Exits nonzero if any validation check of the experiment failed.
fn main() -> std::process::ExitCode {
    pebble_experiments::emit(pebble_experiments::e07_hardness_48::run())
}

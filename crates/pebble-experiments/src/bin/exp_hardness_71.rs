//! Prints the E13 (Theorem 7.1 / Figure 5) experiment table.
//! Exits nonzero if any validation check of the experiment failed.
fn main() -> std::process::ExitCode {
    pebble_experiments::emit(pebble_experiments::e13_hardness_71::run())
}

//! Prints the E13 (Theorem 7.1 / Figure 5) experiment table.
fn main() {
    println!("{}", pebble_experiments::e13_hardness_71::run());
}

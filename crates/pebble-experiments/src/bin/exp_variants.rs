//! Prints the E15 (Appendix B) experiment table.
//! Exits nonzero if any validation check of the experiment failed.
fn main() -> std::process::ExitCode {
    pebble_experiments::emit(pebble_experiments::e15_variants::run())
}

//! Prints the E15 (Appendix B) experiment table.
fn main() {
    println!("{}", pebble_experiments::e15_variants::run());
}

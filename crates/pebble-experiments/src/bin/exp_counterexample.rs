//! Prints the E8 (Lemma 5.4 / Figure 3) experiment table.
//! Exits nonzero if any validation check of the experiment failed.
fn main() -> std::process::ExitCode {
    pebble_experiments::emit(pebble_experiments::e08_counterexample::run())
}

//! Prints the E8 (Lemma 5.4 / Figure 3) experiment table.
fn main() {
    println!("{}", pebble_experiments::e08_counterexample::run());
}

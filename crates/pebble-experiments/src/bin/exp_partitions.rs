//! Prints the E9 (Lemmas 6.4 and 6.8) experiment table.
//! Exits nonzero if any validation check of the experiment failed.
fn main() -> std::process::ExitCode {
    pebble_experiments::emit(pebble_experiments::e09_partitions::run())
}

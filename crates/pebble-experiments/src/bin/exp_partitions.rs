//! Prints the E9 (Lemmas 6.4 and 6.8) experiment table.
fn main() {
    println!("{}", pebble_experiments::e09_partitions::run());
}

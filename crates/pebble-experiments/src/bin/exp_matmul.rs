//! Prints the E11 (Theorem 6.10) experiment table.
fn main() {
    println!("{}", pebble_experiments::e11_matmul::run());
}

//! Prints the E11 (Theorem 6.10) experiment table.
//! Exits nonzero if any validation check of the experiment failed.
fn main() -> std::process::ExitCode {
    pebble_experiments::emit(pebble_experiments::e11_matmul::run())
}

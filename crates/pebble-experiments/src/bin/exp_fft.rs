//! Prints the E10 (Theorem 6.9 / Figure 4) experiment table.
fn main() {
    println!("{}", pebble_experiments::e10_fft::run());
}

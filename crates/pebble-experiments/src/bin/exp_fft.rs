//! Prints the E10 (Theorem 6.9 / Figure 4) experiment table.
//! Exits nonzero if any validation check of the experiment failed.
fn main() -> std::process::ExitCode {
    pebble_experiments::emit(pebble_experiments::e10_fft::run())
}

//! Prints the E5 (Proposition 4.6) experiment table.
fn main() {
    println!("{}", pebble_experiments::e05_collection::run());
}

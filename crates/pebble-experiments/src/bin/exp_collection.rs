//! Prints the E5 (Proposition 4.6) experiment table.
//! Exits nonzero if any validation check of the experiment failed.
fn main() -> std::process::ExitCode {
    pebble_experiments::emit(pebble_experiments::e05_collection::run())
}

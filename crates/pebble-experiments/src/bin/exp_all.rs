//! Prints every experiment table in order (E1 through E16), sweeping the
//! experiments across all cores. Exits nonzero if any experiment's
//! validation checks failed, so CI catches a broken reproduction instead of
//! a green run with a failure row in a table.
//!
//! `--json` additionally emits one JSON array with every table after the
//! unchanged plain-text output.
fn main() -> std::process::ExitCode {
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("exp_all: unknown flag {other} (supported: --json)");
                return std::process::ExitCode::FAILURE;
            }
        }
    }
    let failures = pebble_experiments::run_all_with(json);
    if failures == 0 {
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!("exp_all: {failures} validation check(s) FAILED");
        std::process::ExitCode::FAILURE
    }
}

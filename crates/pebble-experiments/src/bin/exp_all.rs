//! Prints every experiment table in order (E1 through E15), sweeping the
//! experiments across all cores. Exits nonzero if any experiment's
//! validation checks failed, so CI catches a broken reproduction instead of
//! a green run with a failure row in a table.
fn main() -> std::process::ExitCode {
    let failures = pebble_experiments::run_all();
    if failures == 0 {
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!("exp_all: {failures} validation check(s) FAILED");
        std::process::ExitCode::FAILURE
    }
}

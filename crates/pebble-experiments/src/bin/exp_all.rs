//! Prints every experiment table in order (E1 through E15).
fn main() {
    pebble_experiments::run_all();
}

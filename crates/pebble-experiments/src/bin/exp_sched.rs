//! Prints the E16 (heuristic scheduling) experiment table: the
//! FFT / matmul / attention / random-layered corpus swept through the
//! `pebble-sched` portfolio in parallel, every cost simulator-replayed and
//! paired with its certified lower bound.
//!
//! `--json` additionally emits the table as one machine-readable JSON object
//! after the unchanged plain-text table. Exits nonzero if any validation
//! check of the experiment failed.
fn main() -> std::process::ExitCode {
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("exp_sched: unknown flag {other} (supported: --json)");
                return std::process::ExitCode::FAILURE;
            }
        }
    }
    pebble_experiments::emit_with(pebble_experiments::e16_sched::run(), json)
}

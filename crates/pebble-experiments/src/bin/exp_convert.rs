//! Prints the E14 (Proposition 4.1) experiment table.
fn main() {
    println!("{}", pebble_experiments::e14_convert::run());
}

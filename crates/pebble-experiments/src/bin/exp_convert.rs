//! Prints the E14 (Proposition 4.1) experiment table.
//! Exits nonzero if any validation check of the experiment failed.
fn main() -> std::process::ExitCode {
    pebble_experiments::emit(pebble_experiments::e14_convert::run())
}

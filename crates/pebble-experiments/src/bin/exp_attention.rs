//! Prints the E12 (Theorem 6.11) experiment table.
//! Exits nonzero if any validation check of the experiment failed.
fn main() -> std::process::ExitCode {
    pebble_experiments::emit(pebble_experiments::e12_attention::run())
}

//! Prints the E12 (Theorem 6.11) experiment table.
fn main() {
    println!("{}", pebble_experiments::e12_attention::run());
}

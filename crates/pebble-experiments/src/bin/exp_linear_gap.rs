//! Prints the E6 (Proposition 4.7) experiment table.
//! Exits nonzero if any validation check of the experiment failed.
fn main() -> std::process::ExitCode {
    pebble_experiments::emit(pebble_experiments::e06_linear_gap::run())
}

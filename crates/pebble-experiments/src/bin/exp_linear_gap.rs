//! Prints the E6 (Proposition 4.7) experiment table.
fn main() {
    println!("{}", pebble_experiments::e06_linear_gap::run());
}

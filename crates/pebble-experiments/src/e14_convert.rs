//! E14 — Proposition 4.1: every RBP pebbling converts into a PRBP pebbling of
//! the same (or lower) I/O cost.

use crate::Table;
use pebble_dag::generators::{binary_tree, fft, fig1_full, kary_tree, matvec, zipper};
use pebble_game::convert::rbp_to_prbp;
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;
use pebble_game::strategies;
use pebble_game::trace::RbpTrace;

fn corpus() -> Vec<(&'static str, pebble_dag::Dag, RbpTrace, usize)> {
    let mut out: Vec<(&'static str, pebble_dag::Dag, RbpTrace, usize)> = Vec::new();
    let f = fig1_full();
    out.push((
        "fig1 (A.1 optimal)",
        f.dag.clone(),
        strategies::fig1::rbp_optimal_trace(&f),
        4,
    ));
    let tr = kary_tree(2, 4);
    out.push((
        "binary tree d=4",
        tr.dag.clone(),
        strategies::tree::rbp_tree(&tr),
        3,
    ));
    let mv = matvec(5);
    out.push((
        "matvec m=5",
        mv.dag.clone(),
        strategies::matvec::rbp_row_by_row(&mv),
        10,
    ));
    let z = zipper(3, 8);
    out.push((
        "zipper d=3 L=8",
        z.dag.clone(),
        strategies::zipper::rbp_zipper(&z),
        5,
    ));
    let ff = fft(32);
    out.push((
        "FFT m=32 (blocked)",
        ff.dag.clone(),
        strategies::fft::rbp_blocked(&ff, 8).unwrap(),
        8,
    ));
    let bt = binary_tree(5);
    out.push((
        "binary tree d=5 (topological)",
        bt.clone(),
        strategies::topological::rbp_topological(&bt, 4).unwrap(),
        4,
    ));
    out
}

/// Build the E14 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E14 (Prop 4.1): RBP-to-PRBP conversion preserves the cost",
        &[
            "workload",
            "r",
            "RBP cost",
            "converted PRBP cost",
            "PRBP <= RBP",
        ],
    );
    for (name, dag, rbp_trace, r) in corpus() {
        let rbp_cost = rbp_trace.validate(&dag, RbpConfig::new(r)).unwrap();
        let prbp = rbp_to_prbp(&dag, &rbp_trace, r).unwrap();
        let prbp_cost = prbp.validate(&dag, PrbpConfig::new(r)).unwrap();
        t.check(prbp_cost <= rbp_cost);
        t.push_row([
            name.to_string(),
            r.to_string(),
            rbp_cost.to_string(),
            prbp_cost.to_string(),
            (prbp_cost <= rbp_cost).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn conversion_never_increases_cost() {
        let t = super::run();
        for row in &t.rows {
            assert_eq!(row[4], "true", "{row:?}");
        }
    }
}

//! E10 — Section 6.3.1 / Theorem 6.9 / Figure 4: the m-point FFT. The blocked
//! strategy costs `Θ(m·log m / log r)` and stays within a constant factor of
//! the PRBP lower bound.

use crate::Table;
use pebble_bounds::analytic::fft_prbp_lower_bound;
use pebble_dag::generators::fft;
use pebble_game::prbp::PrbpConfig;
use pebble_game::strategies::fft as fft_strategies;

/// (m, r) pairs swept by the experiment.
pub const CASES: [(usize, usize); 6] = [
    (64, 8),
    (256, 8),
    (1024, 8),
    (1024, 16),
    (1024, 64),
    (4096, 16),
];

/// Build the E10 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E10 (Thm 6.9, Fig 4): m-point FFT, blocked strategy vs PRBP lower bound",
        &[
            "m",
            "r",
            "trivial 2m",
            "PRBP strategy",
            "lower bound",
            "strategy/bound",
        ],
    );
    for (m, r) in CASES {
        let f = fft(m);
        let cost = fft_strategies::prbp_blocked(&f, r)
            .unwrap()
            .validate(&f.dag, PrbpConfig::new(r))
            .unwrap();
        let bound = fft_prbp_lower_bound(m, r);
        t.check(cost as f64 >= bound);
        t.check(cost as f64 <= 64.0 * bound);
        t.push_row([
            m.to_string(),
            r.to_string(),
            (2 * m).to_string(),
            cost.to_string(),
            format!("{bound:.0}"),
            format!("{:.2}", cost as f64 / bound),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn strategy_respects_and_tracks_the_lower_bound() {
        let t = super::run();
        for row in &t.rows {
            let cost: f64 = row[3].parse().unwrap();
            let bound: f64 = row[4].parse().unwrap();
            assert!(cost >= bound, "{row:?}");
            // Constant-factor tracking: the blocked strategy is within a
            // modest factor of the (constant-explicit) lower bound.
            assert!(cost <= 64.0 * bound, "{row:?}");
        }
    }

    #[test]
    fn cost_grows_with_m_and_shrinks_with_r() {
        let t = super::run();
        let get = |i: usize| t.rows[i][3].parse::<usize>().unwrap();
        assert!(get(0) < get(1) && get(1) < get(2)); // m grows at r = 8
        assert!(get(2) > get(3) && get(3) > get(4)); // r grows at m = 1024
    }
}

//! E16 — heuristic scheduling at scale (`pebble-sched`): the corpus of
//! FFT / matmul / attention / random-layered instances that is beyond exact
//! reach (10³–10⁵ nodes), swept through the scheduler portfolio.
//!
//! Every reported cost is a simulator-replayed trace cost
//! ([`pebble_sched::certify_prbp`] / [`pebble_sched::certify_rbp`]), paired
//! with the best admissible lower bound, so each row carries a *certified*
//! optimality gap. The registered checks pin:
//!
//! * every trace validates and its cost is at least every admissible bound;
//! * no portfolio member loses to the generic `strategies::topological`
//!   baseline on the instance (the baseline is itself part of the portfolio,
//!   so "best of suite" is at most the baseline by construction);
//! * on the FFT, matmul and attention rows, the best certified gap is at
//!   most 4× — the structure-aware strategies (blocked / tiled / streaming)
//!   keep the portfolio within a constant factor of the Section 6.3 lower
//!   bounds at scales where the exact solvers cannot go;
//! * the corpus contains an FFT instance with at least 10⁴ nodes.
//!
//! This corpus is also what `bench_sched` measures into the committed
//! `BENCH_sched.json` baseline.

use crate::runner;
use crate::Table;
use pebble_dag::generators::{attention_full, fft, matmul, random_layered, RandomLayeredConfig};
use pebble_dag::Dag;
use pebble_game::strategies;
use pebble_game::Model;
use pebble_sched::{certify_prbp, certify_rbp, ScheduleReport, Scheduler};

/// One corpus instance: a DAG, a model, a cache size, the generic schedulers
/// to sweep and (for the structured families) the paper's near-optimal
/// strategy trace.
pub struct SchedInstance {
    /// Stable instance id.
    pub id: &'static str,
    /// Game model.
    pub model: Model,
    /// Cache size.
    pub r: usize,
    /// The DAG to schedule.
    pub dag: Dag,
    /// Generic schedulers swept on this instance.
    pub schedulers: Vec<Scheduler>,
    /// Structure-aware strategy (name + RBP/PRBP trace), when the instance
    /// family has one. Its cost is validated exactly like every other row.
    pub structured: Option<(&'static str, StructuredTrace)>,
    /// `true` if the ≤ 4× certified-gap criterion applies (FFT, matmul and
    /// attention families).
    pub gap_gated: bool,
}

/// A structured strategy trace in either model.
pub enum StructuredTrace {
    /// An RBP trace.
    Rbp(pebble_game::RbpTrace),
    /// A PRBP trace.
    Prbp(pebble_game::PrbpTrace),
}

/// Generic schedulers cheap enough for every instance size: exactly the
/// shipped default portfolio, so the committed benchmark always covers what
/// `pebble_sched::default_suite` ships.
fn core_suite() -> Vec<Scheduler> {
    pebble_sched::default_suite()
}

/// Schedulers affordable on small and mid-size instances only.
fn wide_beam() -> Scheduler {
    Scheduler::Beam {
        width: 8,
        branch: 4,
    }
}

fn local_refine() -> Scheduler {
    Scheduler::Local { iterations: 120 }
}

/// Structure-aware divide-and-conquer (E17's engine), swept as a portfolio
/// member on the small and mid-size PRBP instances so the committed
/// benchmark baseline tracks its costs.
fn compose() -> Scheduler {
    Scheduler::Compose {
        exact_budget: pebble_sched::compose::DEFAULT_EXACT_BUDGET,
    }
}

/// The scheduling corpus. All instances are deterministic; the committed
/// `BENCH_sched.json` baseline gates their costs exactly.
pub fn corpus() -> Vec<SchedInstance> {
    let mut out = Vec::new();

    // FFT family (Theorem 6.9): the blocked strategy certifies the gap.
    let f64_ = fft(64);
    let mut small_suite = core_suite();
    small_suite.push(wide_beam());
    small_suite.push(local_refine());
    small_suite.push(compose());
    out.push(SchedInstance {
        id: "fft-64",
        model: Model::Prbp,
        r: 16,
        dag: f64_.dag.clone(),
        schedulers: small_suite.clone(),
        structured: Some((
            "blocked",
            StructuredTrace::Prbp(strategies::fft::prbp_blocked(&f64_, 16).expect("r >= 4")),
        )),
        gap_gated: true,
    });
    out.push(SchedInstance {
        id: "fft-64",
        model: Model::Rbp,
        r: 16,
        dag: f64_.dag.clone(),
        schedulers: core_suite(),
        structured: Some((
            "blocked",
            StructuredTrace::Rbp(strategies::fft::rbp_blocked(&f64_, 16).expect("r >= 4")),
        )),
        gap_gated: true,
    });
    let f256 = fft(256);
    let mut mid_suite = core_suite();
    mid_suite.push(wide_beam());
    mid_suite.push(compose());
    out.push(SchedInstance {
        id: "fft-256",
        model: Model::Prbp,
        r: 64,
        dag: f256.dag.clone(),
        schedulers: mid_suite.clone(),
        structured: Some((
            "blocked",
            StructuredTrace::Prbp(strategies::fft::prbp_blocked(&f256, 64).expect("r >= 4")),
        )),
        gap_gated: true,
    });
    // The at-scale FFT instance of the acceptance criteria: 11 264 nodes,
    // far beyond exact-solver reach.
    let f1024 = fft(1024);
    out.push(SchedInstance {
        id: "fft-1024",
        model: Model::Prbp,
        r: 512,
        dag: f1024.dag.clone(),
        schedulers: core_suite(),
        structured: Some((
            "blocked",
            StructuredTrace::Prbp(strategies::fft::prbp_blocked(&f1024, 512).expect("r >= 4")),
        )),
        gap_gated: true,
    });

    // Matmul family (Theorem 6.10): the √r-tiling certifies the gap.
    let mm8 = matmul(8, 8, 8);
    out.push(SchedInstance {
        id: "matmul-8",
        model: Model::Prbp,
        r: 24,
        dag: mm8.dag.clone(),
        schedulers: small_suite.clone(),
        structured: Some((
            "tiled",
            StructuredTrace::Prbp(strategies::matmul::prbp_tiled(&mm8, 24).expect("r >= 4")),
        )),
        gap_gated: true,
    });
    let mm16 = matmul(16, 16, 16);
    let mut mm16_suite = core_suite();
    mm16_suite.push(compose());
    out.push(SchedInstance {
        id: "matmul-16",
        model: Model::Prbp,
        r: 64,
        dag: mm16.dag.clone(),
        schedulers: mm16_suite,
        structured: Some((
            "tiled",
            StructuredTrace::Prbp(strategies::matmul::prbp_tiled(&mm16, 64).expect("r >= 4")),
        )),
        gap_gated: true,
    });

    // Attention family (Theorem 6.11): FlashAttention-style streaming
    // certifies the gap.
    let att16 = attention_full(16, 4);
    out.push(SchedInstance {
        id: "attention-16x4",
        model: Model::Prbp,
        r: 68,
        dag: att16.dag.clone(),
        schedulers: mid_suite.clone(),
        structured: Some((
            "streaming",
            StructuredTrace::Prbp(
                strategies::attention::prbp_streaming(&att16, 68).expect("r >= 4d + 3"),
            ),
        )),
        gap_gated: true,
    });
    let att24 = attention_full(24, 8);
    out.push(SchedInstance {
        id: "attention-24x8",
        model: Model::Prbp,
        r: 260,
        dag: att24.dag.clone(),
        schedulers: core_suite(),
        structured: Some((
            "streaming",
            StructuredTrace::Prbp(
                strategies::attention::prbp_streaming(&att24, 260).expect("r >= 4d + 3"),
            ),
        )),
        gap_gated: true,
    });

    // Random layered DAGs: no structure to exploit, no analytic gap
    // guarantee — the rows report how the generic portfolio fares.
    out.push(SchedInstance {
        id: "random-128x80",
        model: Model::Prbp,
        r: 64,
        dag: random_layered(RandomLayeredConfig {
            layers: 80,
            width: 128,
            max_in_degree: 3,
            seed: 7,
        }),
        schedulers: core_suite(),
        structured: None,
        gap_gated: false,
    });
    out.push(SchedInstance {
        id: "random-64x40",
        model: Model::Rbp,
        r: 8,
        dag: random_layered(RandomLayeredConfig {
            layers: 40,
            width: 64,
            max_in_degree: 3,
            seed: 11,
        }),
        schedulers: core_suite(),
        structured: None,
        gap_gated: false,
    });

    out
}

/// All certified reports for one instance: one per applicable scheduler plus
/// the structured strategy, in sweep order.
pub fn sweep_instance(inst: &SchedInstance) -> Vec<ScheduleReport> {
    let mut reports = Vec::new();
    for &s in &inst.schedulers {
        let report = match inst.model {
            Model::Prbp => s
                .run_prbp(&inst.dag, inst.r)
                .map(|t| certify_prbp(&inst.dag, inst.r, &t, s.to_string()).expect("valid trace")),
            Model::Rbp => s
                .run_rbp(&inst.dag, inst.r)
                .map(|t| certify_rbp(&inst.dag, inst.r, &t, s.to_string()).expect("valid trace")),
        };
        if let Some(report) = report {
            reports.push(report);
        }
    }
    if let Some((name, structured)) = &inst.structured {
        let report = match structured {
            StructuredTrace::Rbp(t) => {
                certify_rbp(&inst.dag, inst.r, t, *name).expect("valid structured trace")
            }
            StructuredTrace::Prbp(t) => {
                certify_prbp(&inst.dag, inst.r, t, *name).expect("valid structured trace")
            }
        };
        reports.push(report);
    }
    reports
}

/// Build the E16 table, sweeping the corpus instances across all cores.
pub fn run() -> Table {
    run_with_threads(runner::default_threads())
}

/// [`run`] with an explicit worker count.
pub fn run_with_threads(threads: usize) -> Table {
    let mut t = Table::new(
        "E16 (pebble-sched): heuristic schedules vs certified lower bounds beyond exact reach",
        &[
            "instance",
            "model",
            "nodes",
            "edges",
            "r",
            "scheduler",
            "cost",
            "best LB",
            "gap",
        ],
    );
    let instances = corpus();
    let swept = runner::run_parallel_with_threads(
        instances.iter().collect::<Vec<_>>(),
        sweep_instance,
        threads,
    );

    let mut has_large_fft = false;
    for (inst, reports) in instances.iter().zip(&swept) {
        t.check(!reports.is_empty());
        let baseline_cost = reports
            .iter()
            .find(|rep| rep.scheduler == "baseline")
            .map(|rep| rep.cost);
        let best = reports.iter().map(|rep| rep.cost).min().unwrap_or(0);
        if inst.id.starts_with("fft") && inst.dag.node_count() >= 10_000 {
            has_large_fft = true;
        }
        for rep in reports {
            // Every cost is a simulator-replayed trace cost at least as
            // large as every admissible lower bound.
            t.check(rep.bounds.iter().all(|b| rep.cost >= b.value));
            t.check(rep.gap().is_finite() && rep.gap() >= 1.0);
            t.push_row([
                inst.id.to_string(),
                inst.model.short_name().to_string(),
                inst.dag.node_count().to_string(),
                inst.dag.edge_count().to_string(),
                inst.r.to_string(),
                rep.scheduler.clone(),
                rep.cost.to_string(),
                rep.best_bound.to_string(),
                format!("{:.2}", rep.gap()),
            ]);
        }
        // Best-of-portfolio never loses to the generic topological baseline.
        if let Some(base) = baseline_cost {
            t.check(best <= base);
        }
        // The structured families stay within the certified 4x gap.
        if inst.gap_gated {
            let best_gap = reports
                .iter()
                .map(|rep| rep.gap())
                .fold(f64::INFINITY, f64::min);
            t.check(best_gap <= 4.0);
        }
    }
    t.check(has_large_fft);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_diverse_and_at_scale() {
        let c = corpus();
        assert!(c.iter().any(|i| i.model == Model::Rbp));
        assert!(c.iter().any(|i| i.dag.node_count() >= 10_000));
        for family in ["fft", "matmul", "attention", "random"] {
            assert!(
                c.iter().any(|i| i.id.starts_with(family)),
                "missing {family} instances"
            );
        }
        // Gap-gated rows all carry a structured certifying strategy.
        assert!(c
            .iter()
            .filter(|i| i.gap_gated)
            .all(|i| i.structured.is_some()));
    }

    // The sweep now includes `compose` (several full portfolio passes over
    // candidate decompositions), which takes minutes unoptimised — release
    // builds only; CI runs it through the targeted release step
    // (`cargo test --release -p pebble-experiments --lib -- e16_sched::tests`).
    #[cfg(not(debug_assertions))]
    #[test]
    fn small_instance_sweep_brackets_costs() {
        let c = corpus();
        let inst = c.iter().find(|i| i.id == "matmul-8").unwrap();
        let reports = sweep_instance(inst);
        assert!(reports.len() >= 5);
        for rep in &reports {
            assert!(rep.cost >= rep.best_bound);
        }
        let best = reports.iter().map(|rep| rep.cost).min().unwrap();
        let tiled = reports.iter().find(|rep| rep.scheduler == "tiled").unwrap();
        assert!(best <= 4 * tiled.best_bound);
    }
}

//! E12 — Section 6.3.3 / Theorem 6.11: attention. The streaming
//! (FlashAttention-style) strategy costs `Θ(m²·d²/r)` in the large-cache
//! regime and stays above the PRBP lower bound
//! `Ω(min(m²d/√r, m²d²/r))`.

use crate::Table;
use pebble_bounds::analytic::{attention_large_cache_regime, attention_prbp_lower_bound};
use pebble_dag::generators::attention_full;
use pebble_game::prbp::PrbpConfig;
use pebble_game::strategies::attention as att_strategies;

/// (m, d, r) triples swept by the experiment.
pub const CASES: [(usize, usize, usize); 5] = [
    (8, 2, 11),
    (16, 2, 11),
    (16, 2, 19),
    (16, 2, 35),
    (12, 3, 27),
];

/// Build the E12 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E12 (Thm 6.11): attention, streaming strategy vs PRBP lower bound",
        &[
            "m",
            "d",
            "r",
            "large-cache regime",
            "lower bound",
            "PRBP streaming",
        ],
    );
    for (m, d, r) in CASES {
        let att = attention_full(m, d);
        let cost = att_strategies::prbp_streaming(&att, r)
            .unwrap()
            .validate(&att.dag, PrbpConfig::new(r))
            .unwrap();
        let bound = attention_prbp_lower_bound(m, d, r);
        t.check(cost as f64 >= bound);
        t.push_row([
            m.to_string(),
            d.to_string(),
            r.to_string(),
            attention_large_cache_regime(d, r).to_string(),
            format!("{bound:.0}"),
            cost.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn strategy_respects_the_bound_and_improves_with_cache() {
        let t = super::run();
        for row in &t.rows {
            let bound: f64 = row[4].parse().unwrap();
            let cost: f64 = row[5].parse().unwrap();
            assert!(cost >= bound, "{row:?}");
        }
        // m = 16, d = 2: r = 11 vs 19 vs 35 — cost decreases with cache size.
        let c11: usize = t.rows[1][5].parse().unwrap();
        let c19: usize = t.rows[2][5].parse().unwrap();
        let c35: usize = t.rows[3][5].parse().unwrap();
        assert!(c11 > c19);
        assert!(c19 > c35);
    }
}

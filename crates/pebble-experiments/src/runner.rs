//! A dependency-free parallel work-queue runner.
//!
//! The experiment suite and the benchmark harness both sweep independent DAG
//! workloads; this runner fans a `Vec` of work items over scoped
//! `std::thread` workers pulling from an atomic queue, and returns the
//! results *in input order*. No external thread-pool crate is required, and
//! a worker panic propagates to the caller (so a failing experiment still
//! fails the process).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parse a `PRBP_THREADS`-style override. Returns `Some(n)` for a parseable
/// value, clamped to at least 1 worker (`"0"` means "run sequentially", not
/// "run nothing"); `None` for an absent, empty or unparseable value, so the
/// caller falls back to the hardware default.
pub fn threads_from_env(value: Option<&str>) -> Option<usize> {
    let v = value?.trim();
    if v.is_empty() {
        return None;
    }
    v.parse::<usize>().ok().map(|n| n.max(1))
}

/// Number of worker threads to use by default: the `PRBP_THREADS` environment
/// variable when set to a positive integer (so CI and benchmark runs can pin
/// worker counts), otherwise the available hardware parallelism, or 1 if that
/// cannot be determined.
pub fn default_threads() -> usize {
    if let Some(n) = threads_from_env(std::env::var("PRBP_THREADS").ok().as_deref()) {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `worker` over every item on `threads` scoped threads, returning the
/// results in input order. `threads` is clamped to `1..=items.len()`; with a
/// single thread (or a single item) everything runs inline on the caller's
/// thread.
pub fn run_parallel_with_threads<I, T, F>(items: Vec<I>, worker: F, threads: usize) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.into_iter().map(worker).collect();
    }

    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("work item taken twice");
                let out = worker(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker finished without a result")
        })
        .collect()
}

/// [`run_parallel_with_threads`] with [`default_threads`] workers.
pub fn run_parallel<I, T, F>(items: Vec<I>, worker: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let threads = default_threads();
    run_parallel_with_threads(items, worker, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = run_parallel_with_threads((0..100).collect(), |i| i * 2, 8);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = run_parallel_with_threads(vec!["a", "b"], |s| s.to_uppercase(), 1);
        assert_eq!(out, vec!["A", "B"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = run_parallel_with_threads(Vec::<usize>::new(), |i| i, 4);
        assert!(out.is_empty());
    }

    #[test]
    fn oversubscribed_thread_count_is_clamped() {
        let out = run_parallel_with_threads(vec![1, 2, 3], |i| i + 1, 64);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn env_override_parses_positive_integers() {
        assert_eq!(threads_from_env(Some("4")), Some(4));
        assert_eq!(threads_from_env(Some(" 12 ")), Some(12));
        assert_eq!(threads_from_env(Some("1")), Some(1));
    }

    #[test]
    fn env_override_clamps_zero_to_one() {
        assert_eq!(threads_from_env(Some("0")), Some(1));
    }

    #[test]
    fn env_override_rejects_garbage() {
        assert_eq!(threads_from_env(None), None);
        assert_eq!(threads_from_env(Some("")), None);
        assert_eq!(threads_from_env(Some("  ")), None);
        assert_eq!(threads_from_env(Some("lots")), None);
        assert_eq!(threads_from_env(Some("-3")), None);
        assert_eq!(threads_from_env(Some("3.5")), None);
    }
}

//! A dependency-free parallel work-queue runner.
//!
//! The experiment suite and the benchmark harness both sweep independent DAG
//! workloads; this runner fans a `Vec` of work items over scoped
//! `std::thread` workers pulling from an atomic queue, and returns the
//! results *in input order*. No external thread-pool crate is required, and
//! a worker panic propagates to the caller (so a failing experiment still
//! fails the process).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the available hardware
/// parallelism, or 1 if it cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `worker` over every item on `threads` scoped threads, returning the
/// results in input order. `threads` is clamped to `1..=items.len()`; with a
/// single thread (or a single item) everything runs inline on the caller's
/// thread.
pub fn run_parallel_with_threads<I, T, F>(items: Vec<I>, worker: F, threads: usize) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.into_iter().map(worker).collect();
    }

    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("work item taken twice");
                let out = worker(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker finished without a result")
        })
        .collect()
}

/// [`run_parallel_with_threads`] with [`default_threads`] workers.
pub fn run_parallel<I, T, F>(items: Vec<I>, worker: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let threads = default_threads();
    run_parallel_with_threads(items, worker, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = run_parallel_with_threads((0..100).collect(), |i| i * 2, 8);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = run_parallel_with_threads(vec!["a", "b"], |s| s.to_uppercase(), 1);
        assert_eq!(out, vec!["A", "B"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = run_parallel_with_threads(Vec::<usize>::new(), |i| i, 4);
        assert!(out.is_empty());
    }

    #[test]
    fn oversubscribed_thread_count_is_clamped() {
        let out = run_parallel_with_threads(vec![1, 2, 3], |i| i + 1, 64);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}

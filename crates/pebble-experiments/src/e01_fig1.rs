//! E1 — Proposition 4.2 / Figure 1 / Appendix A.1: on the Figure 1 DAG with
//! `r = 4`, `OPT_RBP = 3` but `OPT_PRBP = 2`.

use crate::Table;
use pebble_dag::generators::fig1_full;
use pebble_game::exact::{self, SearchConfig};
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;
use pebble_game::strategies::fig1;

/// Build the E1 table: exact optima and the validated Appendix A.1 strategy
/// costs for both models.
pub fn run() -> Table {
    let f = fig1_full();
    let r = fig1::FIG1_CACHE;
    let rbp_opt =
        exact::optimal_rbp_cost(&f.dag, RbpConfig::new(r), SearchConfig::default()).unwrap();
    let prbp_opt =
        exact::optimal_prbp_cost(&f.dag, PrbpConfig::new(r), SearchConfig::default()).unwrap();
    let rbp_strategy = fig1::rbp_optimal_trace(&f)
        .validate(&f.dag, RbpConfig::new(r))
        .unwrap();
    let prbp_strategy = fig1::prbp_optimal_trace(&f)
        .validate(&f.dag, PrbpConfig::new(r))
        .unwrap();

    let mut t = Table::new(
        "E1 (Prop 4.2, Fig 1): OPT_RBP vs OPT_PRBP on the Figure 1 DAG, r = 4",
        &["model", "exact optimum", "Appendix A.1 strategy", "paper"],
    );
    t.check(rbp_opt == 3 && rbp_strategy == 3);
    t.check(prbp_opt == 2 && prbp_strategy == 2);
    t.push_row([
        "RBP".into(),
        rbp_opt.to_string(),
        rbp_strategy.to_string(),
        "3".into(),
    ]);
    t.push_row([
        "PRBP".into(),
        prbp_opt.to_string(),
        prbp_strategy.to_string(),
        "2".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn matches_proposition_4_2() {
        let t = super::run();
        assert_eq!(t.rows[0][1], "3");
        assert_eq!(t.rows[0][2], "3");
        assert_eq!(t.rows[1][1], "2");
        assert_eq!(t.rows[1][2], "2");
    }
}

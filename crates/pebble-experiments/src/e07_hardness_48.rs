//! E7 — Theorem 4.8 / Lemma 4.10: the reduction from `maxinset-vertex` to
//! "does PRBP strictly beat RBP on this DAG?". For each vertex of a few small
//! source graphs the table lists the oracle answer and the size of the
//! generated pebbling instance.

use crate::Table;
use pebble_hardness::independent_set::{max_independent_set_size, maxinset_vertex};
use pebble_hardness::reduction48;
use pebble_hardness::UGraph;

/// The small source graphs used by the experiment.
pub fn instances() -> Vec<(&'static str, UGraph)> {
    vec![
        (
            "star K1,3",
            UGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]),
        ),
        (
            "path P5",
            UGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]),
        ),
        ("cycle C5", UGraph::cycle(5)),
        (
            "triangle+pendant",
            UGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3)]),
        ),
    ]
}

/// Build the E7 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E7 (Thm 4.8): maxinset-vertex reduction instances",
        &[
            "graph",
            "v0",
            "max ind. set",
            "v0 in a maximum set?",
            "OPT_PRBP < OPT_RBP?",
            "DAG nodes",
            "cache r",
        ],
    );
    for (name, g) in instances() {
        let alpha = max_independent_set_size(&g);
        for v0 in 0..g.vertex_count() {
            let red = reduction48::build(&g, v0);
            // Theorem 4.8: the reduction answers the negated oracle.
            t.check(red.prbp_strictly_better() != maxinset_vertex(&g, v0));
            t.push_row([
                name.to_string(),
                v0.to_string(),
                alpha.to_string(),
                maxinset_vertex(&g, v0).to_string(),
                red.prbp_strictly_better().to_string(),
                red.dag.node_count().to_string(),
                red.r.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn reduction_answer_is_the_negated_oracle() {
        let t = super::run();
        for row in &t.rows {
            let in_max: bool = row[3].parse().unwrap();
            let gap: bool = row[4].parse().unwrap();
            assert_eq!(gap, !in_max, "row {row:?}");
        }
    }
}

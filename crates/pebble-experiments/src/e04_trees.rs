//! E4 — Section 4.2.2 / Proposition 4.5 / Appendix A.2: binary and k-ary
//! reduction trees with `r = k + 1`. The validated strategy costs match the
//! closed forms `k^d + 2·k^(d−1) − 1` (RBP) and `k^d + 2·k^(d−k) − 1` (PRBP).

use crate::Table;
use pebble_dag::generators::kary_tree;
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;
use pebble_game::strategies::tree;

/// (arity k, depth d) pairs swept by the experiment.
pub const CASES: [(usize, usize); 8] = [
    (2, 3),
    (2, 4),
    (2, 5),
    (2, 6),
    (2, 8),
    (3, 3),
    (3, 4),
    (4, 3),
];

/// Build the E4 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E4 (Prop 4.5, App A.2): k-ary reduction trees, r = k + 1",
        &[
            "k",
            "d",
            "RBP strategy",
            "RBP formula",
            "PRBP strategy",
            "PRBP formula",
        ],
    );
    for (k, d) in CASES {
        let tr = kary_tree(k, d);
        let rbp = tree::rbp_tree(&tr)
            .validate(&tr.dag, RbpConfig::new(k + 1))
            .unwrap();
        let prbp = tree::prbp_tree(&tr)
            .validate(&tr.dag, PrbpConfig::new(k + 1))
            .unwrap();
        t.check(rbp == tree::rbp_tree_cost_formula(k, d));
        t.check(prbp == tree::prbp_tree_cost_formula(k, d));
        t.check(prbp < rbp);
        t.push_row([
            k.to_string(),
            d.to_string(),
            rbp.to_string(),
            tree::rbp_tree_cost_formula(k, d).to_string(),
            prbp.to_string(),
            tree::prbp_tree_cost_formula(k, d).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn strategies_match_the_formulas_and_prbp_wins() {
        let t = super::run();
        for row in &t.rows {
            assert_eq!(row[2], row[3], "RBP mismatch at k={} d={}", row[0], row[1]);
            assert_eq!(row[4], row[5], "PRBP mismatch at k={} d={}", row[0], row[1]);
            let rbp: usize = row[2].parse().unwrap();
            let prbp: usize = row[4].parse().unwrap();
            assert!(prbp < rbp);
        }
    }
}

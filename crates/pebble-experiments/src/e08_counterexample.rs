//! E8 — Lemma 5.4 / Figure 3: the S-partition bound fails for PRBP. The true
//! PRBP cost stays at the trivial 8 while the classic bound
//! `r·(MIN_part(2r) − 1)` grows linearly with the instance.

use crate::Table;
use pebble_bounds::counterexample::{
    min_spartition_classes_lower_bound, partition_from_pebbling, prbp_trivial_trace,
    COUNTEREXAMPLE_CACHE,
};
use pebble_dag::generators::spartition_counterexample;
use pebble_game::prbp::PrbpConfig;

/// Group sizes swept by the experiment.
pub const GROUP_SIZES: [usize; 4] = [30, 60, 120, 240];

/// Build the E8 table.
pub fn run() -> Table {
    let r = COUNTEREXAMPLE_CACHE;
    let mut t = Table::new(
        "E8 (Lemma 5.4, Fig 3): failure of the classic S-partition bound in PRBP (r = 3)",
        &[
            "group size",
            "n",
            "OPT_PRBP (validated)",
            "classic bound r*(MIN_part(6)-1)",
            "trace partition valid S-partition?",
            "valid S-dominator partition?",
        ],
    );
    for group_size in GROUP_SIZES {
        let c = spartition_counterexample(group_size);
        let cost = prbp_trivial_trace(&c)
            .validate(&c.dag, PrbpConfig::new(r))
            .unwrap();
        let false_bound = r * (min_spartition_classes_lower_bound(group_size) - 1);
        let partition = partition_from_pebbling(&c);
        let valid_full = partition.validate(&c.dag, 2 * r).is_ok();
        let valid_dom = partition.validate_dominator_only(&c.dag, 2 * r).is_ok();
        t.check(cost == 8);
        t.check(false_bound > cost);
        t.check(!valid_full);
        t.check(valid_dom);
        t.push_row([
            group_size.to_string(),
            c.dag.node_count().to_string(),
            cost.to_string(),
            false_bound.to_string(),
            valid_full.to_string(),
            valid_dom.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn bound_diverges_while_cost_stays_at_eight() {
        let t = super::run();
        for row in &t.rows {
            let cost: usize = row[2].parse().unwrap();
            let bound: usize = row[3].parse().unwrap();
            assert_eq!(cost, 8);
            assert!(bound > cost);
            assert_eq!(row[4], "false");
            assert_eq!(row[5], "true");
        }
    }
}

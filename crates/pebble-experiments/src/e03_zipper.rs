//! E3 — Section 4.2.1 / Proposition 4.4: the zipper gadget with `r = d + 2`.
//! RBP pays ≈ `d` loads per chain node; PRBP pays 2 per (pre-aggregated)
//! chain node.

use crate::Table;
use pebble_dag::generators::zipper;
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;
use pebble_game::strategies::zipper as z_strategies;

/// (group size d, chain length) pairs swept by the experiment.
pub const CASES: [(usize, usize); 5] = [(3, 8), (4, 8), (5, 8), (4, 16), (6, 24)];

/// Build the E3 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E3 (Prop 4.4): zipper gadget, r = d + 2",
        &[
            "d",
            "chain",
            "trivial",
            "RBP strategy",
            "PRBP strategy",
            "PRBP/RBP",
        ],
    );
    for (d, len) in CASES {
        let z = zipper(d, len);
        let rbp = z_strategies::rbp_zipper(&z)
            .validate(&z.dag, RbpConfig::new(d + 2))
            .unwrap();
        let prbp = z_strategies::prbp_zipper(&z)
            .validate(&z.dag, PrbpConfig::new(d + 2))
            .unwrap();
        t.check(prbp < rbp);
        t.push_row([
            d.to_string(),
            len.to_string(),
            z.dag.trivial_cost().to_string(),
            rbp.to_string(),
            prbp.to_string(),
            format!("{:.2}", prbp as f64 / rbp as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn prbp_beats_rbp_for_d_at_least_three() {
        let t = super::run();
        for row in &t.rows {
            let rbp: usize = row[3].parse().unwrap();
            let prbp: usize = row[4].parse().unwrap();
            assert!(prbp < rbp, "d={} chain={}", row[0], row[1]);
        }
    }
}

//! # pebble-experiments
//!
//! One function per quantitative claim of the paper; each returns a
//! [`Table`] that the corresponding `exp_*` binary prints. `EXPERIMENTS.md`
//! records the expected (paper) versus the measured (this crate) values.
//!
//! Every number in these tables is a *validated* pebbling cost (the move
//! sequence was replayed through the simulators) or an exact optimum from the
//! solvers — never a formula evaluated on faith.

#![deny(missing_docs)]

pub mod runner;
pub mod table;

pub mod e01_fig1;
pub mod e02_matvec;
pub mod e03_zipper;
pub mod e04_trees;
pub mod e05_collection;
pub mod e06_linear_gap;
pub mod e07_hardness_48;
pub mod e08_counterexample;
pub mod e09_partitions;
pub mod e10_fft;
pub mod e11_matmul;
pub mod e12_attention;
pub mod e13_hardness_71;
pub mod e14_convert;
pub mod e15_variants;
pub mod e16_sched;
pub mod e17_compose;

pub use table::Table;

/// An experiment entry: stable id plus the function building its table.
pub type Experiment = (&'static str, fn() -> Table);

/// Every experiment in order: id and the function building its table.
pub const EXPERIMENTS: [Experiment; 17] = [
    ("e01", e01_fig1::run),
    ("e02", e02_matvec::run),
    ("e03", e03_zipper::run),
    ("e04", e04_trees::run),
    ("e05", e05_collection::run),
    ("e06", e06_linear_gap::run),
    ("e07", e07_hardness_48::run),
    ("e08", e08_counterexample::run),
    ("e09", e09_partitions::run),
    ("e10", e10_fft::run),
    ("e11", e11_matmul::run),
    ("e12", e12_attention::run),
    ("e13", e13_hardness_71::run),
    ("e14", e14_convert::run),
    ("e15", e15_variants::run),
    ("e16", e16_sched::run),
    ("e17", e17_compose::run),
];

/// Run every experiment across all cores, printing each table in order
/// (used by the `exp_all` binary). Returns the total number of failed
/// validation checks; a nonzero result means the reproduction is broken and
/// callers should exit nonzero.
pub fn run_all() -> usize {
    run_all_with(false)
}

/// [`run_all`], optionally followed by one JSON array of every table (the
/// `--json` flag of `exp_all`). The plain-text tables are unchanged either
/// way.
pub fn run_all_with(json: bool) -> usize {
    let mut failures = 0;
    let tables = all_tables_parallel(runner::default_threads());
    for table in &tables {
        println!("{table}");
        println!();
        failures += table.failures;
    }
    if json {
        let rendered: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
        println!("[{}]", rendered.join(","));
    }
    failures
}

/// Print a table and return the exit code for its `exp_*` binary: success
/// only if every validation check registered while building it passed. The
/// table itself goes to stdout (unchanged format); the failure summary goes
/// to stderr.
pub fn emit(table: Table) -> std::process::ExitCode {
    emit_with(table, false)
}

/// [`emit`], optionally followed by the table's JSON rendering (the `--json`
/// flag of the experiment binaries). The plain-text table is unchanged.
pub fn emit_with(table: Table, json: bool) -> std::process::ExitCode {
    println!("{table}");
    if json {
        println!("{}", table.to_json());
    }
    if table.is_ok() {
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!(
            "{}: {} validation check(s) FAILED",
            table.title, table.failures
        );
        std::process::ExitCode::FAILURE
    }
}

/// All experiment tables in order, built sequentially.
pub fn all_tables() -> Vec<Table> {
    EXPERIMENTS.iter().map(|(_, run)| run()).collect()
}

/// All experiment tables in order, built concurrently on `threads` workers.
/// Each experiment is independent, so the sweep scales with the core count;
/// results come back in the canonical E1..E15 order regardless.
pub fn all_tables_parallel(threads: usize) -> Vec<Table> {
    runner::run_parallel_with_threads(EXPERIMENTS.to_vec(), |(_, run)| run(), threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_produces_a_nonempty_passing_table() {
        // This is the cheap smoke test; the individual experiment modules
        // assert their paper-specific invariants. Built in parallel, which
        // also exercises the runner on the real workload. E16 sweeps the
        // at-scale scheduling corpus (10⁴-node instances) and E17 runs
        // several full portfolio passes per instance; both take minutes
        // unoptimised, so they are exercised in release builds only —
        // CI's release `exp_all` run and this test under `--release` still
        // cover them; their cheap invariants live in `e16_sched::tests` /
        // `e17_compose::tests`.
        let experiments: Vec<Experiment> = EXPERIMENTS
            .iter()
            .copied()
            .filter(|&(id, _)| !cfg!(debug_assertions) || (id != "e16" && id != "e17"))
            .collect();
        let count = experiments.len();
        let tables = runner::run_parallel_with_threads(
            experiments,
            |(_, run)| run(),
            runner::default_threads(),
        );
        assert_eq!(tables.len(), count);
        for table in tables {
            assert!(!table.rows.is_empty(), "{} has no rows", table.title);
            assert!(!table.columns.is_empty());
            for row in &table.rows {
                assert_eq!(
                    row.len(),
                    table.columns.len(),
                    "ragged row in {}",
                    table.title
                );
            }
            assert!(
                table.is_ok(),
                "{}: {} validation checks failed",
                table.title,
                table.failures
            );
        }
    }
}

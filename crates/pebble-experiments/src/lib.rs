//! # pebble-experiments
//!
//! One function per quantitative claim of the paper; each returns a
//! [`Table`] that the corresponding `exp_*` binary prints. `EXPERIMENTS.md`
//! records the expected (paper) versus the measured (this crate) values.
//!
//! Every number in these tables is a *validated* pebbling cost (the move
//! sequence was replayed through the simulators) or an exact optimum from the
//! solvers — never a formula evaluated on faith.

#![deny(missing_docs)]

pub mod table;

pub mod e01_fig1;
pub mod e02_matvec;
pub mod e03_zipper;
pub mod e04_trees;
pub mod e05_collection;
pub mod e06_linear_gap;
pub mod e07_hardness_48;
pub mod e08_counterexample;
pub mod e09_partitions;
pub mod e10_fft;
pub mod e11_matmul;
pub mod e12_attention;
pub mod e13_hardness_71;
pub mod e14_convert;
pub mod e15_variants;

pub use table::Table;

/// Run every experiment, printing each table (used by the `exp_all` binary).
pub fn run_all() {
    for table in all_tables() {
        println!("{table}");
        println!();
    }
}

/// All experiment tables in order.
pub fn all_tables() -> Vec<Table> {
    vec![
        e01_fig1::run(),
        e02_matvec::run(),
        e03_zipper::run(),
        e04_trees::run(),
        e05_collection::run(),
        e06_linear_gap::run(),
        e07_hardness_48::run(),
        e08_counterexample::run(),
        e09_partitions::run(),
        e10_fft::run(),
        e11_matmul::run(),
        e12_attention::run(),
        e13_hardness_71::run(),
        e14_convert::run(),
        e15_variants::run(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_produces_a_nonempty_table() {
        // This is the cheap smoke test; the individual experiment modules
        // assert their paper-specific invariants.
        for table in all_tables() {
            assert!(!table.rows.is_empty(), "{} has no rows", table.title);
            assert!(!table.columns.is_empty());
            for row in &table.rows {
                assert_eq!(
                    row.len(),
                    table.columns.len(),
                    "ragged row in {}",
                    table.title
                );
            }
        }
    }
}

//! E15 — Section 8.1 / Appendix B: model variants. Exact optima on the
//! Figure 1 DAG and its variant-resistant modifications, for the one-shot,
//! re-computation and sliding-pebble models, plus the in-degree-scaled
//! compute-cost comparison of Appendix B.3.

use crate::Table;
use pebble_dag::generators::fig1_full;
use pebble_game::cost::CostModel;
use pebble_game::exact::{self, SearchConfig};
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;
use pebble_game::strategies::fig1;
use pebble_game::variants::{fig1_recompute_resistant, fig1_sliding_resistant};

/// Build the E15 table.
pub fn run() -> Table {
    let r = 4;
    let search = SearchConfig::default;
    let mut t = Table::new(
        "E15 (App B): model variants on Figure 1 and its adjusted versions (r = 4)",
        &[
            "DAG",
            "RBP one-shot",
            "RBP recompute",
            "RBP sliding",
            "PRBP",
        ],
    );

    let original = fig1_full();
    let variants: Vec<(&str, pebble_dag::Dag)> = vec![
        ("Figure 1", original.dag.clone()),
        ("Figure 1 + z-layer (B.1)", fig1_recompute_resistant().dag),
        ("Figure 1 + w0 (B.2)", fig1_sliding_resistant().dag),
    ];
    for (name, dag) in &variants {
        let one_shot = exact::optimal_rbp_cost(dag, RbpConfig::new(r), search()).unwrap();
        let recompute =
            exact::optimal_rbp_cost(dag, RbpConfig::new(r).with_recompute(), search()).unwrap();
        let sliding =
            exact::optimal_rbp_cost(dag, RbpConfig::new(r).with_sliding(), search()).unwrap();
        let prbp = exact::optimal_prbp_cost(dag, PrbpConfig::new(r), search()).unwrap();
        // Appendix B: recompute/sliding never hurt, PRBP stays at 2, and the
        // adjusted DAGs restore 3 for their respective variants.
        t.check(recompute <= one_shot && sliding <= one_shot);
        t.check(prbp == 2);
        match *name {
            "Figure 1" => t.check(one_shot == 3 && recompute == 2 && sliding == 2),
            "Figure 1 + z-layer (B.1)" => t.check(recompute == 3),
            _ => t.check(sliding == 3),
        };
        t.push_row([
            name.to_string(),
            one_shot.to_string(),
            recompute.to_string(),
            sliding.to_string(),
            prbp.to_string(),
        ]);
    }

    // Appendix B.3: the in-degree-scaled compute-cost translation keeps RBP
    // and PRBP compute totals comparable (ε·n on fully aggregated nodes).
    let eps = 0.125;
    let model = CostModel::with_compute_cost(eps);
    let rbp_total = model.rbp_cost(&fig1::rbp_optimal_trace(&original));
    let prbp_total =
        model.prbp_cost_indegree_scaled(&original.dag, &fig1::prbp_optimal_trace(&original));
    t.push_row([
        format!("Figure 1, compute cost eps={eps}"),
        format!("{rbp_total:.3}"),
        "-".into(),
        "-".into(),
        format!("{prbp_total:.3}"),
    ]);
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn variant_optima_match_the_appendix() {
        let t = super::run();
        // Original Figure 1: one-shot 3, recompute 2, sliding 2, PRBP 2.
        assert_eq!(t.rows[0][1..5], ["3", "2", "2", "2"].map(String::from));
        // z-layer adjustment restores 3 for the recompute model.
        assert_eq!(t.rows[1][2], "3");
        assert_eq!(t.rows[1][4], "2");
        // w0 adjustment restores 3 for the sliding model.
        assert_eq!(t.rows[2][3], "3");
        assert_eq!(t.rows[2][4], "2");
    }

    #[test]
    fn compute_cost_row_keeps_models_comparable() {
        let t = super::run();
        let last = t.rows.last().unwrap();
        let rbp: f64 = last[1].parse().unwrap();
        let prbp: f64 = last[4].parse().unwrap();
        // PRBP saves one I/O, and the scaled compute totals are both ε·(#non-source nodes).
        assert!(prbp < rbp);
        assert!((rbp - prbp - 1.0).abs() < 1e-9);
    }
}

//! E2 — Proposition 4.3: matrix–vector multiplication with `m + 3 ≤ r ≤ 2m`.
//! PRBP achieves the trivial cost `m² + 2m`; RBP needs at least `m² + 3m − 1`
//! (and the paper-matching RBP strategy achieves exactly that with `r = 2m`).

use crate::Table;
use pebble_dag::generators::matvec;
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;
use pebble_game::strategies::matvec as mv_strategies;

/// Dimensions swept by the experiment.
pub const SIZES: [usize; 5] = [3, 4, 8, 16, 32];

/// Build the E2 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E2 (Prop 4.3): matrix-vector multiplication, r_PRBP = m+3, r_RBP = 2m",
        &[
            "m",
            "trivial = m^2+2m",
            "PRBP strategy",
            "RBP lower bound m^2+3m-1",
            "RBP strategy (r=2m)",
        ],
    );
    for m in SIZES {
        let g = matvec(m);
        let prbp = mv_strategies::prbp_streaming(&g)
            .validate(&g.dag, PrbpConfig::new(m + 3))
            .unwrap();
        let rbp = mv_strategies::rbp_row_by_row(&g)
            .validate(&g.dag, RbpConfig::new(2 * m))
            .unwrap();
        t.check(prbp == g.trivial_cost());
        t.check(rbp == g.rbp_lower_bound());
        t.check(prbp < rbp);
        t.push_row([
            m.to_string(),
            g.trivial_cost().to_string(),
            prbp.to_string(),
            g.rbp_lower_bound().to_string(),
            rbp.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn prbp_is_trivial_and_rbp_matches_its_bound() {
        let t = super::run();
        for row in &t.rows {
            let trivial: usize = row[1].parse().unwrap();
            let prbp: usize = row[2].parse().unwrap();
            let bound: usize = row[3].parse().unwrap();
            let rbp: usize = row[4].parse().unwrap();
            assert_eq!(prbp, trivial);
            assert_eq!(rbp, bound);
            assert!(prbp < rbp);
        }
    }
}

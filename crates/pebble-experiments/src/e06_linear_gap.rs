//! E6 — Proposition 4.7: chained Figure 1 gadgets with `r = 4`.
//! `OPT_PRBP = 2` stays constant while RBP grows linearly in the number of
//! gadgets (between `copies + 2` and `2·copies + 2`).

use crate::Table;
use pebble_dag::generators::chained_gadgets;
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;
use pebble_game::strategies::chain_gadget;

/// Gadget counts swept by the experiment.
pub const COPIES: [usize; 6] = [1, 2, 4, 8, 16, 64];

/// Build the E6 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E6 (Prop 4.7): chained gadgets, r = 4 (linear RBP / constant PRBP)",
        &[
            "copies",
            "n",
            "RBP lower bound",
            "RBP strategy",
            "PRBP strategy",
        ],
    );
    for copies in COPIES {
        let c = chained_gadgets(copies);
        let rbp = chain_gadget::rbp_trace(&c)
            .validate(&c.dag, RbpConfig::new(chain_gadget::CHAIN_CACHE))
            .unwrap();
        let prbp = chain_gadget::prbp_trace(&c)
            .validate(&c.dag, PrbpConfig::new(chain_gadget::CHAIN_CACHE))
            .unwrap();
        t.check(prbp == 2);
        t.check(rbp == 2 * copies + 2);
        t.check(rbp >= copies + 2);
        t.push_row([
            copies.to_string(),
            c.dag.node_count().to_string(),
            (copies + 2).to_string(),
            rbp.to_string(),
            prbp.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn prbp_constant_while_rbp_grows_linearly() {
        let t = super::run();
        for (i, row) in t.rows.iter().enumerate() {
            let copies = super::COPIES[i];
            let lower: usize = row[2].parse().unwrap();
            let rbp: usize = row[3].parse().unwrap();
            let prbp: usize = row[4].parse().unwrap();
            assert_eq!(prbp, 2);
            assert_eq!(lower, copies + 2);
            assert!(rbp >= lower);
            assert_eq!(rbp, 2 * copies + 2);
        }
    }
}

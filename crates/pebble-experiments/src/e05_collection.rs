//! E5 — Section 4.2.3 / Proposition 4.6: the pebble-collection gadget.
//! With `d + 2` pebbles only the trivial cost is paid; with fewer pebbles the
//! cost exceeds the `ℓ / 2d` lower bound.

use crate::Table;
use pebble_dag::generators::pebble_collection;
use pebble_game::prbp::PrbpConfig;
use pebble_game::strategies::collection;

/// (d, chain length ℓ, restricted cache r) triples swept by the experiment.
pub const CASES: [(usize, usize, usize); 4] = [(3, 30, 4), (4, 40, 5), (5, 50, 6), (6, 60, 6)];

/// Build the E5 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E5 (Prop 4.6): pebble-collection gadget",
        &[
            "d",
            "chain",
            "trivial (r=d+2)",
            "restricted r",
            "restricted cost",
            "lower bound l/2d",
        ],
    );
    for (d, len, r) in CASES {
        let p = pebble_collection(d, len);
        let full = collection::prbp_full_cache(&p)
            .validate(&p.dag, PrbpConfig::new(d + 2))
            .unwrap();
        let restricted = collection::prbp_restricted(&p, r)
            .unwrap()
            .validate(&p.dag, PrbpConfig::new(r))
            .unwrap();
        t.check(full == d + 1);
        t.check(restricted >= d + 1 + collection::restricted_lower_bound(d, len));
        t.push_row([
            d.to_string(),
            len.to_string(),
            full.to_string(),
            r.to_string(),
            restricted.to_string(),
            collection::restricted_lower_bound(d, len).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn full_cache_is_trivial_and_restricted_exceeds_the_bound() {
        let t = super::run();
        for (i, row) in t.rows.iter().enumerate() {
            let (d, len, _) = super::CASES[i];
            let full: usize = row[2].parse().unwrap();
            let restricted: usize = row[4].parse().unwrap();
            let bound: usize = row[5].parse().unwrap();
            assert_eq!(full, d + 1);
            assert!(restricted >= d + 1 + bound, "d={d} len={len}");
        }
    }
}

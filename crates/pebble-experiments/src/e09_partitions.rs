//! E9 — Lemmas 6.4 / 6.8 and Theorems 6.5 / 6.7: every PRBP pebbling yields a
//! valid 2r-edge partition and a valid 2r-dominator partition whose class
//! counts sandwich the I/O cost: `r·(k − 1) ≤ C ≤ r·k`.

use crate::Table;
use pebble_bounds::from_pebbling::{
    dominator_partition_from_prbp, edge_partition_from_prbp, subsequence_lower_bound,
};
use pebble_dag::generators::{chained_gadgets, fft, kary_tree, matvec, zipper};
use pebble_game::prbp::PrbpConfig;
use pebble_game::strategies;
use pebble_game::trace::PrbpTrace;

fn corpus() -> Vec<(&'static str, pebble_dag::Dag, PrbpTrace, usize)> {
    let mut out: Vec<(&'static str, pebble_dag::Dag, PrbpTrace, usize)> = Vec::new();
    let mv = matvec(6);
    out.push((
        "matvec m=6",
        mv.dag.clone(),
        strategies::matvec::prbp_streaming(&mv),
        9,
    ));
    let tr = kary_tree(2, 5);
    out.push((
        "binary tree d=5",
        tr.dag.clone(),
        strategies::tree::prbp_tree(&tr),
        3,
    ));
    let z = zipper(4, 10);
    out.push((
        "zipper d=4 L=10",
        z.dag.clone(),
        strategies::zipper::prbp_zipper(&z),
        6,
    ));
    let c = chained_gadgets(6);
    out.push((
        "chained gadgets x6",
        c.dag.clone(),
        strategies::chain_gadget::prbp_trace(&c),
        4,
    ));
    let f = fft(32);
    out.push((
        "FFT m=32 r=8",
        f.dag.clone(),
        strategies::fft::prbp_blocked(&f, 8).unwrap(),
        8,
    ));
    out
}

/// Build the E9 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E9 (Lem 6.4/6.8, Thm 6.5/6.7): partitions generated from PRBP pebblings",
        &[
            "workload",
            "r",
            "cost C",
            "edge classes k_e",
            "dom classes k_d",
            "r*(k_e-1) <= C",
            "valid",
        ],
    );
    for (name, dag, trace, r) in corpus() {
        let cost = trace.validate(&dag, PrbpConfig::new(r)).unwrap();
        let ep = edge_partition_from_prbp(&dag, &trace, r);
        let dp = dominator_partition_from_prbp(&dag, &trace, r);
        let ep_valid = ep.validate(&dag, 2 * r).is_ok();
        let dp_valid = dp.validate(&dag, 2 * r).is_ok();
        let bound_ok =
            subsequence_lower_bound(r, ep.class_count()) <= cost && cost <= r * ep.class_count();
        t.check(bound_ok);
        t.check(ep_valid && dp_valid);
        t.push_row([
            name.to_string(),
            r.to_string(),
            cost.to_string(),
            ep.class_count().to_string(),
            dp.class_count().to_string(),
            bound_ok.to_string(),
            (ep_valid && dp_valid).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_partitions_valid_and_bounds_hold() {
        let t = super::run();
        for row in &t.rows {
            assert_eq!(row[5], "true", "{row:?}");
            assert_eq!(row[6], "true", "{row:?}");
        }
    }
}

//! Minimal plain-text table rendering for the experiment binaries.

use std::fmt;

/// A titled table of string cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (experiment id + paper reference).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells; each row has one cell per column.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have one cell per column).
    pub fn push_row<I: IntoIterator<Item = String>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().collect();
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Convenience: append a row of displayable values.
    pub fn row(&mut self, cells: &[&dyn fmt::Display]) {
        self.push_row(cells.iter().map(|c| c.to_string()));
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        writeln!(f, "{}", "-".repeat(header.join("  ").len()))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(["a".to_string(), "1".to_string()]);
        t.push_row(["longer".to_string(), "23".to_string()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(["only one".to_string()]);
    }
}

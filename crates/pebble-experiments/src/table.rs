//! Minimal plain-text table rendering for the experiment binaries.

use serde::Serialize;
use std::fmt;

/// A titled table of string cells, plus a count of failed validation checks.
///
/// Every experiment registers the paper-claim comparisons it performs via
/// [`Table::check`]; the `exp_*` binaries exit nonzero when any check failed,
/// so CI catches a broken reproduction even when the table itself renders.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Table {
    /// Table title (experiment id + paper reference).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells; each row has one cell per column.
    pub rows: Vec<Vec<String>>,
    /// Number of validation checks that failed while building the table.
    pub failures: usize,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            failures: 0,
        }
    }

    /// Record one validation check; a failed check is counted in
    /// [`Table::failures`]. Returns `ok` so it can wrap a computed cell.
    pub fn check(&mut self, ok: bool) -> bool {
        if !ok {
            self.failures += 1;
        }
        ok
    }

    /// Returns `true` if every registered validation check passed.
    pub fn is_ok(&self) -> bool {
        self.failures == 0
    }

    /// Append a row (must have one cell per column).
    pub fn push_row<I: IntoIterator<Item = String>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().collect();
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Convenience: append a row of displayable values.
    pub fn row(&mut self, cells: &[&dyn fmt::Display]) {
        self.push_row(cells.iter().map(|c| c.to_string()));
    }

    /// Machine-readable JSON rendering (`title`, `columns`, `rows`,
    /// `failures`), emitted by the `--json` flag of the experiment binaries
    /// alongside the unchanged plain-text tables.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("tables are plain strings and counters")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        writeln!(f, "{}", "-".repeat(header.join("  ").len()))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(["a".to_string(), "1".to_string()]);
        t.push_row(["longer".to_string(), "23".to_string()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(["only one".to_string()]);
    }

    #[test]
    fn to_json_is_machine_readable() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(["a".to_string(), "1".to_string()]);
        t.check(false);
        let json = t.to_json();
        assert!(json.contains("\"title\":\"demo\""));
        assert!(json.contains("\"columns\":[\"name\",\"value\"]"));
        assert!(json.contains("\"rows\":[[\"a\",\"1\"]]"));
        assert!(json.contains("\"failures\":1"));
    }

    #[test]
    fn checks_accumulate_failures() {
        let mut t = Table::new("demo", &["a"]);
        assert!(t.is_ok());
        assert!(t.check(true));
        assert!(!t.check(false));
        assert!(!t.check(false));
        assert_eq!(t.failures, 2);
        assert!(!t.is_ok());
    }
}

//! # prbp — Partial-computing red-blue pebble game
//!
//! Facade crate re-exporting the full public API of the PRBP reproduction:
//!
//! * [`dag`] — computational DAG substrate and generators for every DAG family
//!   used in the paper (FFT butterflies, matrix multiplication, attention,
//!   trees, zipper / pebble-collection gadgets, hardness constructions, ...).
//! * [`game`] — the red-blue pebble game (RBP) and its partial-computing
//!   extension (PRBP): state machines, legality checking, traces, exact optimal
//!   solvers, constructive strategies and the model variants of Section 8.1.
//! * [`bounds`] — S-partitions, S-edge partitions and S-dominator partitions,
//!   trace-to-partition conversions and the analytic I/O lower bounds.
//! * [`hardness`] — the NP-hardness reduction constructions of Theorems 4.8
//!   and 7.1 together with brute-force independent-set oracles.
//!
//! ## Quickstart
//!
//! ```
//! use prbp::dag::generators::binary_tree;
//! use prbp::game::{exact, Model};
//!
//! // Depth-3 binary tree (8 leaves), cache size r = 3.
//! let dag = binary_tree(3);
//! let rbp = exact::optimal_cost(&dag, 3, Model::Rbp).unwrap();
//! let prbp = exact::optimal_cost(&dag, 3, Model::Prbp).unwrap();
//! assert!(prbp < rbp); // Proposition 4.5
//! ```

pub use pebble_bounds as bounds;
pub use pebble_dag as dag;
pub use pebble_game as game;
pub use pebble_hardness as hardness;

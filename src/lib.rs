//! # prbp — Partial-computing red-blue pebble game
//!
//! Facade crate re-exporting the full public API of the PRBP reproduction:
//!
//! * [`dag`] — computational DAG substrate and generators for every DAG family
//!   used in the paper (FFT butterflies, matrix multiplication, attention,
//!   trees, zipper / pebble-collection gadgets, hardness constructions, ...).
//! * [`game`] — the red-blue pebble game (RBP) and its partial-computing
//!   extension (PRBP): state machines, legality checking, traces, exact optimal
//!   solvers, constructive strategies and the model variants of Section 8.1.
//! * [`bounds`] — S-partitions, S-edge partitions and S-dominator partitions,
//!   trace-to-partition conversions and the analytic I/O lower bounds.
//! * [`hardness`] — the NP-hardness reduction constructions of Theorems 4.8
//!   and 7.1 together with brute-force independent-set oracles.
//! * [`sched`] — scalable heuristic schedulers (greedy with pluggable
//!   eviction policies, packed-state beam search, local-search refinement)
//!   that pebble DAGs far beyond exact reach and certify an optimality gap
//!   against the admissible lower bounds.
//! * [`io`] — DAG interchange (whitespace edge-list, DOT digraph subset,
//!   JSON node/edge document) with line-precise parse errors, so external
//!   workloads can be scheduled and certified; driven from the command line
//!   by the `prbp` binary (`prbp gen | schedule | bound | convert`).
//! * [`serve`] — certified scheduling as a service: an HTTP/JSON server
//!   over a content-addressed schedule cache (iso-invariant canonical DAG
//!   hash → certified schedule, re-validated through the simulator on every
//!   hit), driven by `prbp serve | warm | submit`. The operating notes live
//!   in [`ARCHITECTURE.md`](crate::architecture) and
//!   [`docs/API.md`](crate::http_api).
//! * [`obs`] — dependency-free observability: a process-global metrics
//!   registry (counters, gauges, log-bucketed histograms; rendered by
//!   `GET /metrics` in the Prometheus text format), a typed JSONL trace
//!   stream (`prbp schedule --trace`), and the trace analyzer behind
//!   `prbp trace`.
//!
//! ## Quickstart
//!
//! ```
//! use prbp::dag::generators::binary_tree;
//! use prbp::game::{exact, Model};
//!
//! // Depth-3 binary tree (8 leaves), cache size r = 3.
//! let dag = binary_tree(3);
//! let rbp = exact::optimal_cost(&dag, 3, Model::Rbp).unwrap();
//! let prbp = exact::optimal_cost(&dag, 3, Model::Prbp).unwrap();
//! assert!(prbp < rbp); // Proposition 4.5
//! ```
//!
//! ## Exact optima vs validated strategies
//!
//! The Figure 1 DAG of the paper separates the two models at `r = 4`
//! (Proposition 4.2): the exact solvers find `OPT_RBP = 3` and
//! `OPT_PRBP = 2`, and the explicit Appendix A.1 strategies — replayed and
//! legality-checked move by move — attain exactly those optima:
//!
//! ```
//! use prbp::dag::generators::fig1_full;
//! use prbp::game::exact::{self, SearchConfig};
//! use prbp::game::prbp::PrbpConfig;
//! use prbp::game::rbp::RbpConfig;
//! use prbp::game::strategies::fig1;
//!
//! let f = fig1_full();
//! let rbp_opt =
//!     exact::optimal_rbp_cost(&f.dag, RbpConfig::new(4), SearchConfig::default()).unwrap();
//! let prbp_opt =
//!     exact::optimal_prbp_cost(&f.dag, PrbpConfig::new(4), SearchConfig::default()).unwrap();
//! assert_eq!((rbp_opt, prbp_opt), (3, 2));
//!
//! // The Appendix A.1 strategies match the exact optima.
//! let rbp_trace = fig1::rbp_optimal_trace(&f);
//! assert_eq!(rbp_trace.validate(&f.dag, RbpConfig::new(4)).unwrap(), rbp_opt);
//! let prbp_trace = fig1::prbp_optimal_trace(&f);
//! assert_eq!(prbp_trace.validate(&f.dag, PrbpConfig::new(4)).unwrap(), prbp_opt);
//! ```
//!
//! ## Closed-form costs on reduction trees
//!
//! On k-ary reduction trees with `r = k + 1` pebbles, the constructive
//! strategies achieve the closed forms of Section 4.2.2 / Appendix A.2
//! (PRBP computes the bottom `k + 1` levels for free, RBP only the bottom
//! two, so the gap grows with the depth):
//!
//! ```
//! use prbp::dag::generators::kary_tree;
//! use prbp::game::prbp::PrbpConfig;
//! use prbp::game::rbp::RbpConfig;
//! use prbp::game::strategies::tree;
//!
//! let (k, r) = (2, 3);
//! for depth in 1..=5 {
//!     let t = kary_tree(k, depth);
//!     let rbp = tree::rbp_tree(&t).validate(&t.dag, RbpConfig::new(r)).unwrap();
//!     assert_eq!(rbp, tree::rbp_tree_cost_formula(k, depth));
//!     let prbp = tree::prbp_tree(&t).validate(&t.dag, PrbpConfig::new(r)).unwrap();
//!     assert_eq!(prbp, tree::prbp_tree_cost_formula(k, depth));
//!     assert!(prbp <= rbp);
//! }
//! ```
//!
//! The stand-alone programs under `examples/` print these comparisons as
//! tables (`cargo run --example quickstart`, `--example tree_pebbling`, ...),
//! and the `exp_*` binaries of `pebble-experiments` reproduce the paper's
//! figures and tables end to end.

#![deny(missing_docs)]

pub use pebble_bounds as bounds;
pub use pebble_dag as dag;
pub use pebble_game as game;
pub use pebble_hardness as hardness;
pub use pebble_io as io;
pub use pebble_obs as obs;
pub use pebble_sched as sched;
pub use pebble_serve as serve;

// The operational documentation is compiled into the docs verbatim — and,
// crucially, its code blocks become doc-tests, so the walkthroughs in
// ARCHITECTURE.md and docs/API.md can never silently rot.

#[doc = include_str!("../ARCHITECTURE.md")]
pub mod architecture {}

#[doc = include_str!("../docs/API.md")]
pub mod http_api {}

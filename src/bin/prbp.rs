//! `prbp` — schedule and certify DAG workloads from the command line.
//!
//! Subcommands:
//!
//! * `prbp gen` — generate a paper DAG family (FFT, matmul, attention, tree,
//!   random layered, fig1) in any interchange format;
//! * `prbp schedule` — read a DAG (edge-list / DOT subset / JSON), schedule
//!   it under RBP or PRBP and emit a certified [`ScheduleReport`] as JSON.
//!   Greedy schedulers run through the *streaming* pipeline: the move
//!   sequence is validated and certified as it is produced, never stored, so
//!   million-node DAGs run in memory proportional to the graph itself;
//! * `prbp bound` — evaluate the admissible lower-bound ladder only;
//! * `prbp convert` — translate between the interchange formats;
//! * `prbp serve` — run the certified-scheduling HTTP service over a
//!   content-addressed schedule cache;
//! * `prbp warm` — precompute that cache from a directory of instances;
//! * `prbp submit` — client for a running `prbp serve` (deterministic
//!   exponential-backoff retries on transient connection failures);
//! * `prbp trace` — analyse a `--trace` JSONL capture: phase timings and
//!   the anytime convergence curve.
//!
//! Exit codes: 0 success, 1 runtime/parse error, 2 usage error, 3 deadline
//! expired before any incumbent schedule existed (`--deadline-ms` solves and
//! `submit`; the JSON document carries `"status":"deadline-no-incumbent"`).

use pebble_dag::{generators, Dag};
use pebble_io::Format;
use pebble_obs::trace::JsonlSink;
use pebble_sched::{
    anytime_prbp_result, best_prbp, certify_greedy_prbp, certify_greedy_rbp, certify_prbp_with,
    certify_rbp_with, default_suite, prbp_bound_ladder, rbp_bound_ladder, AnytimeConfig,
    AnytimeError, AnytimeOutcome, BoundSet, BoundValue, ComposeConfig, ScheduleReport, Scheduler,
};
use pebble_serve::http::{client_request_with_retries, Backoff};
use pebble_serve::{warm_from_dir, ScheduleCache, ServeConfig, Server};
use std::collections::HashMap;
use std::io::Read;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "prbp — schedule and certify DAG workloads in the (P)RBP pebble games

USAGE:
  prbp gen --family <name> [family options] [--format F] [--out PATH]
      families:
        fft        --m <points>                  (m-point FFT butterfly)
        matmul     --m1 <n> --m2 <n> --m3 <n>    (matrix multiplication)
        attention  --m <rows> --d <cols>         (Q.K^T attention)
        tree       --depth <d>                   (binary reduction tree)
        random     --layers <n> --width <n> [--max-in <n>] [--seed <n>]
        fig1                                     (the paper's Figure 1 DAG)
  prbp schedule --input PATH --r <cache> [--model prbp|rbp] [--format F]
                [--scheduler S] [--bounds fast|full|auto] [--out PATH]
                [--deadline-ms MS [--workers N]] [--trace FILE.jsonl]
      S: greedy:<belady|lru|fewest>:<natural|dfs> (default greedy:belady:dfs,
         streaming), beam:<width>[:<branch>], local:<iterations>, baseline,
         compose[:<exact-budget>] (structure-aware decomposition; PRBP only),
         or `suite` (best of the default portfolio; materialises traces)
      --deadline-ms runs the anytime engine instead of --scheduler (PRBP
         only): best simulator-validated schedule within the wall-clock
         budget, improved by --workers parallel exact search (0 = all cores)
         and certified with an admissible bound ladder
      --trace FILE.jsonl streams typed observability events (phase spans,
         incumbent/bound improvements) to FILE; analyse with `prbp trace`
  prbp bound --input PATH --r <cache> [--model prbp|rbp] [--format F]
             [--bounds fast|full|auto] [--out PATH]
  prbp convert --input PATH --out PATH [--from F] [--to F]
  prbp serve --cache-dir DIR [--addr HOST:PORT] [--deadline-ms MS]
             [--workers N] [--solver-workers N]
      certified scheduling as a service: POST /v1/schedule answers with a
      validated ScheduleReport, repeated shapes from the content-addressed
      cache (see docs/API.md)
  prbp warm --cache-dir DIR --dir INSTANCE_DIR --r <cache>
            [--exact-budget N]
      precompute the cache: schedule every instance file in INSTANCE_DIR
      with the structure-aware compose pipeline and store the certificates
  prbp submit --addr HOST:PORT --input PATH --r <cache>
              [--deadline-ms MS] [--format F] [--out PATH]
      send one DAG to a running server; exit 3 if the server reports
      deadline-no-incumbent. Transient connection failures retry under
      deterministic exponential backoff (250 ms doubling, capped at 4 s)
  prbp trace FILE.jsonl
      analyse a --trace capture: phase-timing breakdown and the anytime
      convergence curve (time-to-first-incumbent, time-to-final-bound,
      gap over time); `-` reads stdin

  F: edgelist | dot | json (default: by file extension, else sniffed;
     `--input -` reads stdin)
";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" || argv[0] == "help" {
        print!("{USAGE}");
        return if argv.is_empty() { 2 } else { 0 };
    }
    let cmd = argv[0].clone();
    let result = if cmd == "trace" {
        // `trace` takes a positional path, not `--key value` flags.
        cmd_trace(&argv[1..])
    } else {
        let args = match Args::parse(&argv[1..]) {
            Ok(a) => a,
            Err(e) => return usage_error(&e),
        };
        match cmd.as_str() {
            "gen" => cmd_gen(&args),
            "schedule" => cmd_schedule(&args),
            "bound" => cmd_bound(&args),
            "convert" => cmd_convert(&args),
            "serve" => cmd_serve(&args),
            "warm" => cmd_warm(&args),
            "submit" => cmd_submit(&args),
            other => return usage_error(&format!("unknown subcommand `{other}`")),
        }
    };
    match result {
        Ok(()) => 0,
        Err(CliError::Usage(msg)) => usage_error(&msg),
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            1
        }
        Err(CliError::DeadlineNoIncumbent(msg)) => {
            eprintln!("error: {msg}");
            3
        }
    }
}

fn usage_error(msg: &str) -> i32 {
    eprintln!("error: {msg}\n\n{USAGE}");
    2
}

enum CliError {
    Usage(String),
    Runtime(String),
    /// The deadline expired before any incumbent schedule existed. Exit
    /// code 3; the machine-readable document has already been written.
    DeadlineNoIncumbent(String),
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn runtime(msg: impl Into<String>) -> CliError {
    CliError::Runtime(msg.into())
}

/// `--key value` / `--key=value` flag parser; every flag takes a value.
struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument `{arg}`"));
            };
            let (key, value) = match key.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("flag --{key} needs a value"))?;
                    (key.to_string(), v.clone())
                }
            };
            if flags.insert(key.clone(), value).is_some() {
                return Err(format!("flag --{key} given twice"));
            }
        }
        Ok(Args { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| usage(format!("missing required flag --{key}")))
    }

    fn parse_usize(&self, key: &str) -> Result<Option<usize>, CliError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<usize>()
                .map(Some)
                .map_err(|_| usage(format!("--{key} expects a non-negative integer, got `{v}`"))),
        }
    }

    fn require_usize(&self, key: &str) -> Result<usize, CliError> {
        self.require(key)?;
        Ok(self.parse_usize(key)?.expect("checked by require"))
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, CliError> {
        Ok(self.parse_usize(key)?.unwrap_or(default))
    }

    /// Reject flags this subcommand does not know (catches typos early).
    fn check_known(&self, known: &[&str]) -> Result<(), CliError> {
        for key in self.flags.keys() {
            if !known.contains(&key.as_str()) {
                return Err(usage(format!("unknown flag --{key}")));
            }
        }
        Ok(())
    }
}

/// Resolve a format from an explicit flag, a path's extension, or content.
fn resolve_format(
    explicit: Option<&str>,
    path: Option<&str>,
    content: Option<&str>,
) -> Result<Format, CliError> {
    if let Some(f) = explicit {
        return f.parse::<Format>().map_err(usage);
    }
    if let Some(p) = path {
        if p != "-" {
            if let Some(f) = Format::from_path(p) {
                return Ok(f);
            }
        }
    }
    match content {
        Some(text) => Ok(Format::sniff(text)),
        None => Err(usage(
            "cannot infer a format from the file extension; pass --format",
        )),
    }
}

fn read_input(path: &str) -> Result<String, CliError> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| runtime(format!("reading stdin: {e}")))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| runtime(format!("{path}: {e}")))
    }
}

fn write_output(out: Option<&str>, text: &str) -> Result<(), CliError> {
    match out {
        None | Some("-") => {
            print!("{text}");
            Ok(())
        }
        Some(path) => std::fs::write(path, text).map_err(|e| runtime(format!("{path}: {e}"))),
    }
}

fn load_dag(args: &Args) -> Result<(Dag, Format, String), CliError> {
    let path = args.require("input")?.to_string();
    let text = read_input(&path)?;
    let format = resolve_format(args.get("format"), Some(&path), Some(&text))?;
    let dag = pebble_io::parse(&text, format).map_err(|e| runtime(format!("{path}: {e}")))?;
    Ok((dag, format, path))
}

fn bound_set(args: &Args, dag: &Dag) -> Result<BoundSet, CliError> {
    match args.get("bounds").unwrap_or("auto") {
        "fast" => Ok(BoundSet::Fast),
        "full" => Ok(BoundSet::Full),
        "auto" => Ok(BoundSet::auto_for(dag)),
        other => Err(usage(format!(
            "--bounds expects fast, full or auto, got `{other}`"
        ))),
    }
}

fn cmd_gen(args: &Args) -> Result<(), CliError> {
    args.check_known(&[
        "family", "m", "d", "m1", "m2", "m3", "depth", "layers", "width", "max-in", "seed",
        "format", "out",
    ])?;
    let family = args.require("family")?;
    // Validate parameters up-front: the generators enforce their invariants
    // with `assert!`, and a panic (exit 101) is not part of this tool's
    // documented exit-code contract.
    let dag = match family {
        "fft" => {
            let m = args.usize_or("m", 1024)?;
            if m < 2 || !m.is_power_of_two() {
                return Err(usage(format!("--m must be a power of two >= 2, got {m}")));
            }
            generators::fft(m).dag
        }
        "matmul" => {
            let (m1, m2, m3) = (
                args.usize_or("m1", 8)?,
                args.usize_or("m2", 8)?,
                args.usize_or("m3", 8)?,
            );
            if m1 == 0 || m2 == 0 || m3 == 0 {
                return Err(usage("--m1/--m2/--m3 must all be >= 1"));
            }
            generators::matmul(m1, m2, m3).dag
        }
        "attention" => {
            let (m, d) = (args.usize_or("m", 64)?, args.usize_or("d", 16)?);
            if m == 0 || d == 0 {
                return Err(usage("--m and --d must be >= 1"));
            }
            generators::attention_qk(m, d).dag
        }
        "tree" => {
            let depth = args.usize_or("depth", 8)?;
            if depth == 0 {
                return Err(usage("--depth must be >= 1"));
            }
            generators::binary_tree(depth)
        }
        "random" => {
            let (layers, width, max_in) = (
                args.usize_or("layers", 8)?,
                args.usize_or("width", 32)?,
                args.usize_or("max-in", 3)?,
            );
            if layers < 2 || width == 0 || max_in == 0 {
                return Err(usage(
                    "random needs --layers >= 2, --width >= 1 and --max-in >= 1",
                ));
            }
            generators::random_layered(generators::RandomLayeredConfig {
                layers,
                width,
                max_in_degree: max_in,
                seed: args.usize_or("seed", 0)? as u64,
            })
        }
        "fig1" => generators::fig1_full().dag,
        other => {
            return Err(usage(format!(
                "unknown family `{other}` (expected fft, matmul, attention, tree, random or fig1)"
            )))
        }
    };
    // An explicit --format must parse; only a failed *inference* (no flag,
    // no recognisable extension) falls back to the edge-list default.
    let format = match args.get("format") {
        Some(f) => f.parse::<Format>().map_err(usage)?,
        None => args
            .get("out")
            .filter(|p| *p != "-")
            .and_then(Format::from_path)
            .unwrap_or(Format::EdgeList),
    };
    eprintln!(
        "generated {family}: {} nodes, {} edges ({format})",
        dag.node_count(),
        dag.edge_count()
    );
    write_output(args.get("out"), &pebble_io::write(&dag, format))
}

use pebble_io::json::escape as json_escape;

/// Serialise the schedule output document: input metadata, the certified
/// report, and the gap as a top-level convenience field.
fn schedule_doc(path: &str, format: Format, dag: &Dag, report: &ScheduleReport) -> String {
    let report_json = serde_json::to_string(report).expect("report serialises");
    format!(
        "{{\"input\":{{\"path\":\"{}\",\"format\":\"{}\",\"nodes\":{},\"edges\":{}}},\"report\":{},\"gap\":{:.4}}}\n",
        json_escape(path),
        format.name(),
        dag.node_count(),
        dag.edge_count(),
        report_json,
        report.gap()
    )
}

/// The anytime output document: the schedule_doc fields plus the engine's
/// run metadata (deadline, workers, wall-clock, stop reason, proof status).
#[allow(clippy::too_many_arguments)]
fn anytime_doc(
    path: &str,
    format: Format,
    dag: &Dag,
    report: &ScheduleReport,
    outcome: &AnytimeOutcome,
    deadline_ms: usize,
    workers: usize,
    solve_ms: u128,
) -> String {
    let report_json = serde_json::to_string(report).expect("report serialises");
    format!(
        "{{\"status\":\"ok\",\"input\":{{\"path\":\"{}\",\"format\":\"{}\",\"nodes\":{},\"edges\":{}}},\
         \"anytime\":{{\"deadline_ms\":{deadline_ms},\"workers\":{workers},\"solve_ms\":{solve_ms},\
         \"stop\":\"{}\",\"proven_optimal\":{}}},\"report\":{},\"gap\":{:.4}}}\n",
        json_escape(path),
        format.name(),
        dag.node_count(),
        dag.edge_count(),
        outcome.stop.as_str(),
        outcome.proven_optimal,
        report_json,
        report.gap()
    )
}

fn cmd_schedule(args: &Args) -> Result<(), CliError> {
    args.check_known(&[
        "input",
        "format",
        "r",
        "model",
        "scheduler",
        "bounds",
        "out",
        "deadline-ms",
        "workers",
        "trace",
    ])?;
    let traced = match args.get("trace") {
        Some(p) => {
            let sink = JsonlSink::create(std::path::Path::new(p))
                .map_err(|e| runtime(format!("--trace {p}: {e}")))?;
            pebble_obs::trace::set_sink(Arc::new(sink));
            true
        }
        None => false,
    };
    let result = schedule_run(args);
    if traced {
        // Flush and detach the JSONL sink: the process exits through
        // `std::process::exit`, which runs no destructors.
        pebble_obs::trace::clear_sink();
    }
    result
}

fn schedule_run(args: &Args) -> Result<(), CliError> {
    let parse_span = pebble_obs::trace::span("cli:parse");
    let (dag, format, path) = load_dag(args)?;
    drop(parse_span);
    let r = args.require_usize("r")?;
    let model = args.get("model").unwrap_or("prbp");
    let set = bound_set(args, &dag)?;
    let sched_name = args.get("scheduler").unwrap_or("greedy:belady:dfs");

    if let Some(deadline_ms) = args.parse_usize("deadline-ms")? {
        if model != "prbp" {
            return Err(usage("--deadline-ms (the anytime engine) is PRBP-only"));
        }
        if args.get("scheduler").is_some() {
            return Err(usage(
                "--deadline-ms runs the anytime engine; drop --scheduler",
            ));
        }
        if deadline_ms == 0 {
            return Err(usage("--deadline-ms must be >= 1"));
        }
        let workers = args.usize_or("workers", 0)?;
        // Fail fast: a budget too small to produce even a first incumbent
        // is a distinct, machine-readable outcome (exit code 3), not an
        // unbounded extra greedy pass.
        let config = AnytimeConfig {
            workers,
            fail_fast: true,
            ..AnytimeConfig::new(Duration::from_millis(deadline_ms as u64))
        };
        let started = Instant::now();
        let solve_span = pebble_obs::trace::span("cli:solve");
        let solved = anytime_prbp_result(&dag, r, &config, None);
        drop(solve_span);
        let outcome = match solved {
            Ok(outcome) => outcome,
            Err(AnytimeError::SmallR { r }) => {
                return Err(runtime(format!("r = {r} is too small (PRBP needs r >= 2)")))
            }
            Err(AnytimeError::DeadlineNoIncumbent) => {
                let doc = format!(
                    "{{\"status\":\"deadline-no-incumbent\",\"input\":{{\"path\":\"{}\",\
                     \"format\":\"{}\",\"nodes\":{},\"edges\":{}}},\
                     \"anytime\":{{\"deadline_ms\":{deadline_ms},\"workers\":{workers}}}}}\n",
                    json_escape(&path),
                    format.name(),
                    dag.node_count(),
                    dag.edge_count()
                );
                write_output(args.get("out"), &doc)?;
                return Err(CliError::DeadlineNoIncumbent(format!(
                    "deadline of {deadline_ms} ms expired before any incumbent schedule \
                     existed for {path} at r = {r}"
                )));
            }
        };
        let solve_ms = started.elapsed().as_millis();
        let certify_span = pebble_obs::trace::span("cli:certify");
        let report = certify_prbp_with(&dag, r, &outcome.trace, "anytime", set)
            .map_err(|e| runtime(format!("certification failed: {e}")))?;
        drop(certify_span);
        eprintln!(
            "{}: {} nodes, {} edges | anytime r={} cost={} best_bound={} gap={:.2}x \
             ({} after {solve_ms} ms, deadline {deadline_ms} ms{})",
            path,
            dag.node_count(),
            dag.edge_count(),
            r,
            report.cost,
            report.best_bound,
            report.gap(),
            outcome.stop.as_str(),
            if outcome.proven_optimal {
                ", proven optimal"
            } else {
                ""
            }
        );
        let _write_span = pebble_obs::trace::span("cli:write");
        return write_output(
            args.get("out"),
            &anytime_doc(
                &path,
                format,
                &dag,
                &report,
                &outcome,
                deadline_ms,
                workers,
                solve_ms,
            ),
        );
    }
    if args.get("workers").is_some() {
        return Err(usage("--workers requires --deadline-ms"));
    }

    let solve_span = pebble_obs::trace::span("cli:solve");
    let report = if sched_name == "suite" {
        if model != "prbp" {
            return Err(usage("--scheduler suite is PRBP-only"));
        }
        let (scheduler, trace, _) = best_prbp(&dag, r, &default_suite())
            .ok_or_else(|| runtime(format!("no scheduler in the suite can handle r = {r}")))?;
        certify_prbp_with(&dag, r, &trace, scheduler.to_string(), set)
            .map_err(|e| runtime(format!("certification failed: {e}")))?
    } else {
        let scheduler: Scheduler = sched_name.parse().map_err(|e: String| usage(e))?;
        match (scheduler, model) {
            // Greedy schedulers go through the streaming pipeline: moves are
            // certified as they are emitted and never materialised.
            (Scheduler::Greedy { policy, order }, "prbp") => {
                let ord = order.build(&dag);
                certify_greedy_prbp(&dag, r, &ord, policy.build().as_mut(), sched_name, set)
                    .ok_or_else(|| runtime(format!("r = {r} is too small (PRBP needs r >= 2)")))?
                    .map_err(|e| runtime(format!("certification failed: {e}")))?
            }
            (Scheduler::Greedy { policy, order }, "rbp") => {
                let ord = order.build(&dag);
                certify_greedy_rbp(&dag, r, &ord, policy.build().as_mut(), sched_name, set)
                    .ok_or_else(|| {
                        runtime(format!(
                            "r = {r} is too small (RBP needs r >= max in-degree + 1 = {})",
                            dag.max_in_degree() + 1
                        ))
                    })?
                    .map_err(|e| runtime(format!("certification failed: {e}")))?
            }
            (s, "prbp") => {
                let trace = s.run_prbp(&dag, r).ok_or_else(|| {
                    runtime(format!(
                        "scheduler `{s}` cannot handle this instance at r = {r}"
                    ))
                })?;
                certify_prbp_with(&dag, r, &trace, sched_name, set)
                    .map_err(|e| runtime(format!("certification failed: {e}")))?
            }
            (s, "rbp") => {
                let trace = s.run_rbp(&dag, r).ok_or_else(|| {
                    runtime(format!(
                        "scheduler `{s}` cannot handle this instance in RBP at r = {r}"
                    ))
                })?;
                certify_rbp_with(&dag, r, &trace, sched_name, set)
                    .map_err(|e| runtime(format!("certification failed: {e}")))?
            }
            (_, other) => return Err(usage(format!("--model expects prbp or rbp, got `{other}`"))),
        }
    };
    drop(solve_span);

    eprintln!(
        "{}: {} nodes, {} edges | {} r={} cost={} best_bound={} gap={:.2}x",
        path,
        dag.node_count(),
        dag.edge_count(),
        report.scheduler,
        r,
        report.cost,
        report.best_bound,
        report.gap()
    );
    let _write_span = pebble_obs::trace::span("cli:write");
    write_output(args.get("out"), &schedule_doc(&path, format, &dag, &report))
}

fn cmd_trace(rest: &[String]) -> Result<(), CliError> {
    let path = match rest {
        [p] if !p.starts_with("--") => p.as_str(),
        _ => {
            return Err(usage(
                "trace expects exactly one JSONL file path (`-` reads stdin)",
            ))
        }
    };
    let text = read_input(path)?;
    let events =
        pebble_obs::analyze::parse_jsonl(&text).map_err(|e| runtime(format!("{path}: {e}")))?;
    print!("{}", pebble_obs::analyze::summarize(&events));
    Ok(())
}

fn cmd_bound(args: &Args) -> Result<(), CliError> {
    args.check_known(&["input", "format", "r", "model", "bounds", "out"])?;
    let (dag, _, path) = load_dag(args)?;
    let r = args.require_usize("r")?;
    let set = bound_set(args, &dag)?;
    let model = args.get("model").unwrap_or("prbp");
    let (bounds, best): (Vec<BoundValue>, usize) = match model {
        "prbp" => prbp_bound_ladder(&dag, r, set),
        "rbp" => rbp_bound_ladder(&dag, r, set),
        other => return Err(usage(format!("--model expects prbp or rbp, got `{other}`"))),
    };
    let bounds_json = serde_json::to_string(&bounds).expect("bounds serialise");
    let doc = format!(
        "{{\"input\":\"{}\",\"model\":\"{model}\",\"r\":{r},\"bounds\":{bounds_json},\"best_bound\":{best}}}\n",
        json_escape(&path)
    );
    write_output(args.get("out"), &doc)
}

fn cmd_convert(args: &Args) -> Result<(), CliError> {
    args.check_known(&["input", "out", "from", "to"])?;
    let path = args.require("input")?.to_string();
    let text = read_input(&path)?;
    let from = resolve_format(args.get("from"), Some(&path), Some(&text))?;
    let dag = pebble_io::parse(&text, from).map_err(|e| runtime(format!("{path}: {e}")))?;
    let out = args.require("out")?.to_string();
    // This subcommand's format flags are --from/--to, so the generic
    // "pass --format" advice of resolve_format would send users to a flag
    // convert rejects.
    let to = match args.get("to") {
        Some(f) => f.parse::<Format>().map_err(usage)?,
        None => Format::from_path(&out)
            .ok_or_else(|| usage("cannot infer the output format from `--out`; pass --to"))?,
    };
    eprintln!(
        "{path} ({from}) -> {out} ({to}): {} nodes, {} edges",
        dag.node_count(),
        dag.edge_count()
    );
    write_output(Some(&out), &pebble_io::write(&dag, to))
}

fn cmd_serve(args: &Args) -> Result<(), CliError> {
    args.check_known(&[
        "cache-dir",
        "addr",
        "deadline-ms",
        "workers",
        "solver-workers",
    ])?;
    let cache_dir = args.require("cache-dir")?.to_string();
    let deadline_ms = args.usize_or("deadline-ms", 250)?;
    if deadline_ms == 0 {
        return Err(usage("--deadline-ms must be >= 1"));
    }
    let config = ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7117").to_string(),
        workers: args.usize_or("workers", 4)?.max(1),
        deadline: Duration::from_millis(deadline_ms as u64),
        solver_workers: args.usize_or("solver-workers", 0)?,
        ..ServeConfig::default()
    };
    let cache = Arc::new(
        ScheduleCache::open(&cache_dir).map_err(|e| runtime(format!("--cache-dir: {e}")))?,
    );
    let entries = cache.entry_count();
    let server =
        Server::start(&config, cache).map_err(|e| runtime(format!("starting server: {e}")))?;
    eprintln!(
        "prbp-serve listening on http://{} (cache {cache_dir}: {entries} entries, \
         default deadline {deadline_ms} ms, {} workers)",
        server.local_addr(),
        config.workers
    );
    // Serve until killed; the acceptor and pool run on their own threads.
    loop {
        std::thread::park();
    }
}

fn cmd_warm(args: &Args) -> Result<(), CliError> {
    args.check_known(&["cache-dir", "dir", "r", "exact-budget", "out"])?;
    let cache_dir = args.require("cache-dir")?.to_string();
    let dir = args.require("dir")?.to_string();
    let r = args.require_usize("r")?;
    let compose = ComposeConfig {
        exact_budget: args.usize_or("exact-budget", ComposeConfig::default().exact_budget)?,
        ..ComposeConfig::default()
    };
    let cache =
        ScheduleCache::open(&cache_dir).map_err(|e| runtime(format!("--cache-dir: {e}")))?;
    let summary = warm_from_dir(&cache, std::path::Path::new(&dir), r, &compose)
        .map_err(|e| runtime(format!("warming from {dir}: {e}")))?;
    eprintln!(
        "warmed {cache_dir} from {dir} at r={r}: {} files, {} inserted, {} skipped \
         (already cached at <= cost), {} failed",
        summary.files, summary.inserted, summary.skipped, summary.failed
    );
    let doc = format!(
        "{{\"status\":\"ok\",\"r\":{r},\"files\":{},\"inserted\":{},\"skipped\":{},\"failed\":{}}}\n",
        summary.files, summary.inserted, summary.skipped, summary.failed
    );
    write_output(args.get("out"), &doc)
}

fn cmd_submit(args: &Args) -> Result<(), CliError> {
    args.check_known(&["addr", "input", "r", "deadline-ms", "format", "out"])?;
    let addr = args.require("addr")?.to_string();
    let r = args.require_usize("r")?;
    let path = args.require("input")?.to_string();
    let text = read_input(&path)?;
    let mut target = format!("/v1/schedule?r={r}");
    if let Some(deadline_ms) = args.parse_usize("deadline-ms")? {
        target.push_str(&format!("&deadline_ms={deadline_ms}"));
    }
    if let Some(f) = args.get("format") {
        let f = f.parse::<Format>().map_err(usage)?;
        target.push_str(&format!("&format={}", f.name()));
    }
    // Generous retry window: the server may still be binding its listener
    // when a script starts both back-to-back. Backoff doubles from 250 ms
    // and plateaus at 4 s, deterministically.
    let (status, body) = client_request_with_retries(
        &addr,
        "POST",
        &target,
        text.as_bytes(),
        Duration::from_secs(600),
        20,
        Backoff::new(Duration::from_millis(250), Duration::from_secs(4)),
    )
    .map_err(|e| runtime(format!("request to {addr} failed: {e}")))?;
    let mut body = String::from_utf8_lossy(&body).into_owned();
    if !body.ends_with('\n') {
        body.push('\n');
    }
    write_output(args.get("out"), &body)?;
    match status {
        200 => Ok(()),
        504 => Err(CliError::DeadlineNoIncumbent(format!(
            "server at {addr} reported deadline-no-incumbent for {path} at r = {r}"
        ))),
        other => Err(runtime(format!(
            "server at {addr} answered {other}: {}",
            body.trim_end()
        ))),
    }
}
